// Package ledger is the durable per-tenant privacy-budget ledger behind the
// arboretumd analyst gateway (docs/SERVICE.md): every tenant (analyst) holds
// an (ε, δ) allowance, and every query moves through a three-step budget
// lifecycle that extends the runtime's single-query fail-closed contract
// across queries and process restarts:
//
//	reserve — at admission, before anything executes, the query's certified
//	          (ε, δ) is held against the tenant's balance; a reservation
//	          that would oversubscribe the balance fails with
//	          ErrBudgetExhausted and nothing runs.
//	commit  — on success, exactly the certificate's spend becomes permanent
//	          and the reservation is consumed.
//	release — on failure or cancellation, the reservation returns to the
//	          balance; a query that failed closed spends nothing.
//
// Durability is a checksummed JSON-lines write-ahead log built on
// internal/wal: each state transition is one record appended and fsynced
// before the transition takes effect, so the on-disk ledger is never behind
// the in-memory one. Open takes an exclusive advisory lock on the WAL
// (ErrLocked), replays it, truncates a torn final line, and refuses with
// ErrCorrupt any durably written record that fails validation — the rules
// documented in the wal package, shared with the gateway's job journal.
// Reservations that were in flight when the process died are *kept held* by
// replay — never silently released, because the crash may have happened
// after the query's DP release but before the commit record became durable.
// The daemon pairs them at startup with its own job journal and either
// re-executes the job deterministically (committing exactly the certified
// spend) or settles fail-closed with CommitDangling, charging each at its
// full reserved amount: since a reservation is exactly the certificate's ε,
// the recovered balance equals the balance a crash-free run would have
// reached, and spend is never under-counted (never-double-spend's dual).
// Crash points in the append path are simulation-injectable through an
// internal/faults plan (the "wal" kind), which is how the crash-recovery
// tests and the chaos-style service tests drive mid-commit failures
// deterministically.
//
// All methods are safe for concurrent use; admission-time reservations are
// serialized under one mutex, so concurrent analysts can never jointly
// oversubscribe a tenant (ledger_test.go's race pass pins this).
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"arboretum/internal/faults"
	"arboretum/internal/wal"
)

// Typed failure modes. Handlers map these to API error codes, so they are
// part of the service contract (docs/SERVICE.md). The durability errors are
// the wal package's sentinels, re-exported so callers keep matching against
// ledger.ErrCorrupt and friends.
var (
	// ErrBudgetExhausted rejects a reservation that would oversubscribe the
	// tenant's remaining (ε, δ). The query must not execute.
	ErrBudgetExhausted = errors.New("ledger: privacy budget exhausted")
	// ErrNoTenant is returned for operations on an unknown tenant.
	ErrNoTenant = errors.New("ledger: unknown tenant")
	// ErrTenantExists rejects creating a tenant that already exists.
	ErrTenantExists = errors.New("ledger: tenant already exists")
	// ErrNoReservation is returned by Commit/Release without a matching
	// outstanding reservation (including a second Commit for the same job —
	// the double-spend guard).
	ErrNoReservation = errors.New("ledger: no such reservation")
	// ErrCorrupt means replay found a record that is syntactically broken or
	// fails its checksum before the final line. The ledger refuses to guess.
	ErrCorrupt = wal.ErrCorrupt
	// ErrCrashed is the simulated process death injected by a faults plan
	// ("wal" kind): the ledger is poisoned exactly as if the daemon had died
	// mid-append and must be reopened (replayed) before further use.
	ErrCrashed = wal.ErrCrashed
	// ErrLocked means another live process holds the WAL: Open refuses
	// rather than let two daemons interleave conflicting sequence numbers.
	ErrLocked = wal.ErrLocked
)

// Op is a WAL record type.
type Op string

// The four record types of the budget lifecycle.
const (
	OpCreate  Op = "create"  // tenant registered with its (ε, δ) totals
	OpReserve Op = "reserve" // job admission: hold (ε, δ)
	OpCommit  Op = "commit"  // job success: spend ≤ reserved, refund the rest
	OpRelease Op = "release" // job failure/cancel: refund the reservation
)

// Record is one WAL line. Sum covers every other field, so replay can tell
// a torn tail from a decodable-but-tampered record.
type Record struct {
	Seq    uint64  `json:"seq"`
	Op     Op      `json:"op"`
	Tenant string  `json:"tenant"`
	Job    string  `json:"job,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	Del    float64 `json:"del,omitempty"`
	Note   string  `json:"note,omitempty"`
	Sum    string  `json:"sum"`
}

// checksum binds the record fields; hex-truncated SHA-256 keeps lines short
// while torn or edited lines still fail with overwhelming probability. It
// predates internal/wal and is the on-disk format of every existing ledger,
// so it must not change.
func (r *Record) checksum() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%s|%s|%.17g|%.17g|%s",
		r.Seq, r.Op, r.Tenant, r.Job, r.Eps, r.Del, r.Note)))
	return hex.EncodeToString(h[:8])
}

// The wal.Record plumbing.

// WALSeq returns the record's sequence number.
func (r *Record) WALSeq() uint64 { return r.Seq }

// SetWALSeq assigns the record's sequence number.
func (r *Record) SetWALSeq(s uint64) { r.Seq = s }

// WALSum returns the stored checksum.
func (r *Record) WALSum() string { return r.Sum }

// SetWALSum assigns the stored checksum.
func (r *Record) SetWALSum(s string) { r.Sum = s }

// WALChecksum computes the canonical checksum.
func (r *Record) WALChecksum() string { return r.checksum() }

// WALDesc labels the record in injected-crash notes.
func (r *Record) WALDesc() string { return fmt.Sprintf("%s %s/%s", r.Op, r.Tenant, r.Job) }

// Balance is one tenant's budget state. Available ε is
// Total − Spent − Reserved; δ likewise.
type Balance struct {
	TenantID    string  `json:"tenant"`
	EpsTotal    float64 `json:"eps_total"`
	DelTotal    float64 `json:"del_total"`
	EpsSpent    float64 `json:"eps_spent"`
	DelSpent    float64 `json:"del_spent"`
	EpsReserved float64 `json:"eps_reserved"`
	DelReserved float64 `json:"del_reserved"`
	Queries     int     `json:"queries"` // committed queries
}

// EpsAvailable is the ε a new reservation may draw from.
func (b Balance) EpsAvailable() float64 { return b.EpsTotal - b.EpsSpent - b.EpsReserved }

// DelAvailable is the δ a new reservation may draw from.
func (b Balance) DelAvailable() float64 { return b.DelTotal - b.DelSpent - b.DelReserved }

// reservation is one outstanding hold, keyed by (tenant, job).
type reservation struct {
	eps, del float64
}

// Reservation is one outstanding hold as reported by Reservations: the
// startup-recovery view the service pairs against its job journal.
type Reservation struct {
	Tenant, Job string
	Eps, Del    float64
}

// Options configures Open.
type Options struct {
	// Crash injects simulated process deaths into the WAL append path (the
	// faults "wal" kind, coordinates (record sequence, stage)); nil injects
	// nothing. Used by the crash-recovery tests and chaos-style service
	// tests; a production daemon leaves it nil.
	Crash *faults.Plan
}

// Ledger is a durable privacy-budget ledger. Create one with Open.
type Ledger struct {
	mu       sync.Mutex
	log      *wal.Log[*Record]
	tenants  map[string]*Balance
	reserved map[string]reservation // key: tenant + "\x00" + job
	// committed remembers every (tenant, job) that has a durable commit —
	// the startup-recovery signal that a crash fell between the budget
	// commit and the job journal's terminal record (docs/SERVICE.md).
	committed map[string]bool
}

// Open opens (creating if absent) the ledger at path, takes an exclusive
// advisory lock on it (ErrLocked when another process holds it), and
// replays its WAL. A torn final line — unterminated or not decodable as a
// record — is truncated; any durably written record that fails validation
// fails with ErrCorrupt.
func Open(path string, opts Options) (*Ledger, error) {
	l := &Ledger{
		tenants:   map[string]*Balance{},
		reserved:  map[string]reservation{},
		committed: map[string]bool{},
	}
	log, err := wal.Open(path, func() *Record { return new(Record) }, l.apply,
		wal.Options{Crash: opts.Crash, CrashKind: faults.WALCrash})
	if err != nil {
		return nil, err
	}
	l.log = log
	return l, nil
}

// apply folds one validated record into the in-memory state. It runs under
// the wal mutex (replay at Open, then every durable append).
func (l *Ledger) apply(r *Record) error {
	key := r.Tenant + "\x00" + r.Job
	switch r.Op {
	case OpCreate:
		if _, ok := l.tenants[r.Tenant]; ok {
			return fmt.Errorf("duplicate create for tenant %q", r.Tenant)
		}
		l.tenants[r.Tenant] = &Balance{TenantID: r.Tenant, EpsTotal: r.Eps, DelTotal: r.Del}
	case OpReserve:
		b, ok := l.tenants[r.Tenant]
		if !ok {
			return fmt.Errorf("reserve for unknown tenant %q", r.Tenant)
		}
		if _, dup := l.reserved[key]; dup {
			return fmt.Errorf("duplicate reservation %q/%q", r.Tenant, r.Job)
		}
		b.EpsReserved += r.Eps
		b.DelReserved += r.Del
		l.reserved[key] = reservation{eps: r.Eps, del: r.Del}
	case OpCommit:
		b, ok := l.tenants[r.Tenant]
		res, held := l.reserved[key]
		if !ok || !held {
			return fmt.Errorf("commit without reservation %q/%q", r.Tenant, r.Job)
		}
		b.EpsReserved -= res.eps
		b.DelReserved -= res.del
		b.EpsSpent += r.Eps
		b.DelSpent += r.Del
		b.Queries++
		delete(l.reserved, key)
		l.committed[key] = true
	case OpRelease:
		b, ok := l.tenants[r.Tenant]
		res, held := l.reserved[key]
		if !ok || !held {
			return fmt.Errorf("release without reservation %q/%q", r.Tenant, r.Job)
		}
		b.EpsReserved -= res.eps
		b.DelReserved -= res.del
		delete(l.reserved, key)
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
	return nil
}

// CreateTenant registers a tenant with its lifetime (ε, δ) allowance.
func (l *Ledger) CreateTenant(tenant string, eps, del float64) error {
	if tenant == "" || strings.ContainsAny(tenant, "\x00\n") {
		return fmt.Errorf("ledger: invalid tenant id %q", tenant)
	}
	if eps <= 0 || del < 0 {
		return fmt.Errorf("ledger: invalid budget ε=%g δ=%g for tenant %q", eps, del, tenant)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.tenants[tenant]; ok {
		return fmt.Errorf("%w: %q", ErrTenantExists, tenant)
	}
	return l.log.Append(&Record{Op: OpCreate, Tenant: tenant, Eps: eps, Del: del})
}

// EnsureTenant creates the tenant if absent; an existing tenant keeps its
// recorded allowance and history (the daemon's -tenants flag is idempotent
// across restarts).
func (l *Ledger) EnsureTenant(tenant string, eps, del float64) error {
	err := l.CreateTenant(tenant, eps, del)
	if errors.Is(err, ErrTenantExists) {
		return nil
	}
	return err
}

// Reserve holds (eps, del) of the tenant's budget for a job at admission.
// It fails with ErrBudgetExhausted — before anything executes — when the
// hold would oversubscribe the balance, and with ErrNoTenant for an unknown
// tenant. Reservations are serialized, so concurrent Reserve calls can
// never jointly exceed the balance.
func (l *Ledger) Reserve(tenant, job string, eps, del float64) error {
	if eps <= 0 || del < 0 {
		return fmt.Errorf("ledger: invalid reservation ε=%g δ=%g", eps, del)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.tenants[tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTenant, tenant)
	}
	if _, dup := l.reserved[tenant+"\x00"+job]; dup {
		return fmt.Errorf("ledger: job %q already has a reservation", job)
	}
	if eps > b.EpsAvailable()+slack(b.EpsTotal) || del > b.DelAvailable()+slack(b.DelTotal) {
		return fmt.Errorf("%w: tenant %q needs ε=%g, has %g of %g (%g spent, %g reserved)",
			ErrBudgetExhausted, tenant, eps, b.EpsAvailable(), b.EpsTotal, b.EpsSpent, b.EpsReserved)
	}
	return l.log.Append(&Record{Op: OpReserve, Tenant: tenant, Job: job, Eps: eps, Del: del})
}

// slack absorbs float64 rounding when a hold exactly drains a balance (the
// compared values are sums of certificate terms). It scales with the
// quantity being compared so that δ budgets (~1e-6) get a tolerance of a
// few thousand ulps, not a fixed absolute slack that would permit genuine
// oversubscription at δ's magnitude.
func slack(scale float64) float64 { return scale * 1e-12 }

// Commit makes exactly (eps, del) of the job's reservation permanent and
// refunds the remainder. Committing more than was reserved is refused — the
// reservation is the certified worst case, so an overrun means the
// execution disagreed with the certificate.
func (l *Ledger) Commit(tenant, job string, eps, del float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	res, ok := l.reserved[tenant+"\x00"+job]
	if !ok {
		return fmt.Errorf("%w: %q/%q", ErrNoReservation, tenant, job)
	}
	if eps > res.eps+slack(res.eps) || del > res.del+slack(res.del) {
		return fmt.Errorf("ledger: commit ε=%g δ=%g exceeds reservation ε=%g δ=%g for %q/%q",
			eps, del, res.eps, res.del, tenant, job)
	}
	return l.log.Append(&Record{Op: OpCommit, Tenant: tenant, Job: job, Eps: eps, Del: del})
}

// Release returns the job's whole reservation to the tenant's balance.
func (l *Ledger) Release(tenant, job string, note string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.reserved[tenant+"\x00"+job]; !ok {
		return fmt.Errorf("%w: %q/%q", ErrNoReservation, tenant, job)
	}
	return l.log.Append(&Record{Op: OpRelease, Tenant: tenant, Job: job, Note: note})
}

// CommitDangling resolves every reservation left over from a previous
// process (replay keeps them held): each is committed at its full reserved
// amount, charging the crashed query as spent. Fail-closed in the only safe
// direction — the crash may have happened after the DP release but before
// the commit record became durable, and a reservation equals the
// certificate's spend, so the recovered balance matches a crash-free run
// and spend is never under-counted. It returns the resolved job keys.
//
// The service only calls this for reservations its job journal cannot pair
// with a recoverable job (docs/SERVICE.md); paired reservations are instead
// re-executed deterministically and commit their exact certified spend.
func (l *Ledger) CommitDangling(note string) ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.reserved))
	for key := range l.reserved {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	resolved := make([]string, 0, len(keys))
	for _, key := range keys {
		res := l.reserved[key]
		tenant, job, _ := strings.Cut(key, "\x00")
		err := l.log.Append(&Record{
			Op: OpCommit, Tenant: tenant, Job: job,
			Eps: res.eps, Del: res.del, Note: note,
		})
		if err != nil {
			return resolved, err
		}
		resolved = append(resolved, tenant+"/"+job)
	}
	return resolved, nil
}

// Dangling returns the outstanding reservations as "tenant/job" keys, in
// sorted order. After startup recovery, a non-empty result means those jobs
// are currently queued or running.
func (l *Ledger) Dangling() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.reserved))
	for key := range l.reserved {
		tenant, job, _ := strings.Cut(key, "\x00")
		out = append(out, tenant+"/"+job)
	}
	sort.Strings(out)
	return out
}

// Reservations returns the outstanding holds, sorted by (tenant, job) —
// the structured form of Dangling used by startup recovery to pair each
// hold with its journaled job.
func (l *Ledger) Reservations() []Reservation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Reservation, 0, len(l.reserved))
	for key, res := range l.reserved {
		tenant, job, _ := strings.Cut(key, "\x00")
		out = append(out, Reservation{Tenant: tenant, Job: job, Eps: res.eps, Del: res.del})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// Reserved reports whether the job holds an outstanding reservation.
func (l *Ledger) Reserved(tenant, job string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.reserved[tenant+"\x00"+job]
	return ok
}

// Committed reports whether the job has a durable commit record — the
// recovery signal that a crash fell after the budget commit but before the
// job's own terminal record became durable.
func (l *Ledger) Committed(tenant, job string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed[tenant+"\x00"+job]
}

// Balance returns a copy of the tenant's budget state.
func (l *Ledger) Balance(tenant string) (Balance, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.tenants[tenant]
	if !ok {
		return Balance{}, false
	}
	return *b, true
}

// Tenants returns every tenant's balance, sorted by tenant id.
func (l *Ledger) Tenants() []Balance {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Balance, 0, len(l.tenants))
	for _, b := range l.tenants {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TenantID < out[j].TenantID })
	return out
}

// Path returns the WAL file path.
func (l *Ledger) Path() string { return l.log.Path() }

// Seq returns the sequence number of the last durable record.
func (l *Ledger) Seq() uint64 { return l.log.Seq() }

// Close flushes and closes the WAL file. The ledger must not be used after.
func (l *Ledger) Close() error { return l.log.Close() }
