package ledger

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arboretum/internal/parallel"
)

// openT opens a ledger in a temp dir and registers cleanup.
func openT(t *testing.T, path string, opts Options) *Ledger {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func wantBalance(t *testing.T, l *Ledger, tenant string, spent, reserved float64, queries int) {
	t.Helper()
	b, ok := l.Balance(tenant)
	if !ok {
		t.Fatalf("tenant %q missing", tenant)
	}
	if math.Abs(b.EpsSpent-spent) > 1e-12 || math.Abs(b.EpsReserved-reserved) > 1e-12 || b.Queries != queries {
		t.Fatalf("%s balance = spent %g reserved %g queries %d, want %g/%g/%d",
			tenant, b.EpsSpent, b.EpsReserved, b.Queries, spent, reserved, queries)
	}
}

func TestLifecycleAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l := openT(t, path, Options{})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTenant("bob", 3, 1e-6); err != nil {
		t.Fatal(err)
	}
	// alice: one committed query (exact spend), one released.
	if err := l.Reserve("alice", "j1", 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("alice", "j1", 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j2", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Release("alice", "j2", "failed closed"); err != nil {
		t.Fatal(err)
	}
	// bob: a reservation committed below the reserved worst case refunds
	// the difference.
	if err := l.Reserve("bob", "j3", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("bob", "j3", 0.5, 0); err != nil {
		t.Fatal(err)
	}
	wantBalance(t, l, "alice", 1.5, 0, 1)
	wantBalance(t, l, "bob", 0.5, 0, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay restores the identical state and the ledger stays writable.
	r := openT(t, path, Options{})
	wantBalance(t, r, "alice", 1.5, 0, 1)
	wantBalance(t, r, "bob", 0.5, 0, 1)
	if got := r.Tenants(); len(got) != 2 || got[0].TenantID != "alice" || got[1].TenantID != "bob" {
		t.Fatalf("Tenants() = %v", got)
	}
	if err := r.Reserve("alice", "j4", 3.5, 0); err != nil {
		t.Fatal(err)
	}
	wantBalance(t, r, "alice", 1.5, 3.5, 1)
}

func TestTypedRejections(t *testing.T) {
	l := openT(t, filepath.Join(t.TempDir(), "wal"), Options{})
	if err := l.CreateTenant("alice", 1, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTenant("alice", 1, 1e-6); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate create = %v, want ErrTenantExists", err)
	}
	if err := l.EnsureTenant("alice", 99, 1); err != nil {
		t.Fatalf("EnsureTenant on existing = %v", err)
	}
	if b, _ := l.Balance("alice"); b.EpsTotal != 1 {
		t.Fatalf("EnsureTenant overwrote the allowance: %v", b)
	}
	if err := l.Reserve("mallory", "j", 0.1, 0); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("unknown tenant = %v, want ErrNoTenant", err)
	}
	// A rejected reservation leaves spend (and everything else) unchanged.
	if err := l.Reserve("alice", "j", 1.5, 0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("oversized reserve = %v, want ErrBudgetExhausted", err)
	}
	wantBalance(t, l, "alice", 0, 0, 0)
	if err := l.Commit("alice", "ghost", 0.1, 0); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("commit without reservation = %v, want ErrNoReservation", err)
	}
	if err := l.Release("alice", "ghost", ""); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("release without reservation = %v, want ErrNoReservation", err)
	}
	// Double commit: the second is the double-spend guard.
	if err := l.Reserve("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("alice", "j1", 1, 0); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("double commit = %v, want ErrNoReservation", err)
	}
	// Committing above the reservation is refused.
	if err := l.CreateTenant("carol", 10, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("carol", "j2", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("carol", "j2", 2, 0); err == nil {
		t.Fatal("commit above reservation accepted")
	}
	wantBalance(t, l, "carol", 0, 1, 0)
}

// TestConcurrentReservationsNeverOversubscribe is the race pass: 64 analyst
// goroutines race to reserve ε=1 from a 10-ε tenant; exactly 10 may win.
func TestConcurrentReservationsNeverOversubscribe(t *testing.T) {
	l := openT(t, filepath.Join(t.TempDir(), "wal"), Options{})
	if err := l.CreateTenant("alice", 10, 1e-6); err != nil {
		t.Fatal(err)
	}
	const attempts = 64
	wins, err := parallel.Map(nil, attempts, 16, func(i int) (bool, error) {
		err := l.Reserve("alice", "job-"+string(rune('A'+i/26))+string(rune('a'+i%26)), 1, 0)
		if err != nil && !errors.Is(err, ErrBudgetExhausted) {
			return false, err
		}
		return err == nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	won := 0
	for _, w := range wins {
		if w {
			won++
		}
	}
	if won != 10 {
		t.Fatalf("%d reservations won, want exactly 10", won)
	}
	wantBalance(t, l, "alice", 0, 10, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// And the oversubscription guard survives replay.
	r := openT(t, l.Path(), Options{})
	wantBalance(t, r, "alice", 0, 10, 0)
	if err := r.Reserve("alice", "late", 0.5, 0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-replay reserve = %v, want ErrBudgetExhausted", err)
	}
}

// TestTornTailTruncated: a half-written final record (the disk state a
// crash mid-append leaves behind) is detected and truncated; the intact
// prefix replays and the file accepts new appends on a clean boundary.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l := openT(t, path, Options{})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"commit","tenant":"al`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openT(t, path, Options{})
	wantBalance(t, r, "alice", 0, 1, 0) // the torn commit never happened
	if err := r.Commit("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rr := openT(t, path, Options{})
	wantBalance(t, rr, "alice", 1, 0, 1)
}

// TestCorruptTailRefused: a newline-terminated, decodable final record with
// a bad checksum is not a torn append (a torn append cannot include the
// trailing newline) — it is bit-rot of a durably fsynced record, possibly a
// reserve or commit, and silently dropping it would under-count spend. The
// "refuse to guess" contract applies to the tail too.
func TestCorruptTailRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l := openT(t, path, Options{})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the final (commit) record's epsilon, keeping it valid JSON with
	// its newline intact: the checksum catches the edit.
	mut := strings.Replace(string(data), `"op":"commit","tenant":"alice","job":"j1","eps":1`,
		`"op":"commit","tenant":"alice","job":"j1","eps":3`, 1)
	if mut == string(data) {
		t.Fatal("test setup: commit record not found")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt tail = %v, want ErrCorrupt", err)
	}
}

// TestSecondOpenLocked: the WAL admits one process at a time — a second
// Open while the first ledger is live fails fast instead of interleaving
// conflicting sequence numbers; closing the first frees the lock.
func TestSecondOpenLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l := openT(t, path, Options{})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, path, Options{})
	wantBalance(t, r, "alice", 0, 0, 0)
}

// TestDeltaSlackIsTight: the rounding slack scales with the budget, so at
// δ's magnitude (~1e-6) it absorbs ulps only — an absolute 1e-9 slack
// would wave through this ~0.05% genuine δ oversubscription.
func TestDeltaSlackIsTight(t *testing.T) {
	l := openT(t, filepath.Join(t.TempDir(), "wal"), Options{})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j1", 1, 1.0005e-6); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("δ overshoot reserve = %v, want ErrBudgetExhausted", err)
	}
	// Exactly draining the δ budget still succeeds.
	if err := l.Reserve("alice", "j2", 1, 1e-6); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptInteriorRefused: a bad record before the tail is not a torn
// append — the ledger refuses to guess at balances.
func TestCorruptInteriorRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l := openT(t, path, Options{})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("alice", "j1", 1, 0); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the reserve record's epsilon (keeping it valid JSON): the
	// checksum catches the edit.
	mut := strings.Replace(string(data), `"op":"reserve","tenant":"alice","job":"j1","eps":1`,
		`"op":"reserve","tenant":"alice","job":"j1","eps":4`, 1)
	if mut == string(data) {
		t.Fatal("test setup: reserve record not found")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt interior = %v, want ErrCorrupt", err)
	}
}

func TestInvalidInputs(t *testing.T) {
	l := openT(t, filepath.Join(t.TempDir(), "wal"), Options{})
	for _, tc := range []struct {
		id       string
		eps, del float64
	}{
		{"", 1, 0}, {"a\nb", 1, 0}, {"ok", 0, 0}, {"ok", -1, 0}, {"ok", 1, -1},
	} {
		if err := l.CreateTenant(tc.id, tc.eps, tc.del); err == nil {
			t.Errorf("CreateTenant(%q, %g, %g) accepted", tc.id, tc.eps, tc.del)
		}
	}
	if err := l.CreateTenant("alice", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j", 0, 0); err == nil {
		t.Error("zero-ε reservation accepted")
	}
}
