package vsr

import (
	"errors"
	"math/big"
	"testing"

	"arboretum/internal/shamir"
)

func TestDefaultGroupSanity(t *testing.T) {
	g := DefaultGroup()
	if !g.P.ProbablyPrime(10) {
		t.Fatal("P not prime")
	}
	if !g.Q.ProbablyPrime(10) {
		t.Fatal("Q not prime")
	}
	// G must have order Q: G^Q = 1 and G ≠ 1.
	if new(big.Int).Exp(g.G, g.Q, g.P).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("G^Q != 1")
	}
}

func TestRedistributePreservesSecret(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	secret := big.NewInt(987654321012345)

	oldShares, err := field.Split(secret, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	newShares, err := Redistribute(g, oldShares, 3, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(newShares) != 7 {
		t.Fatalf("got %d new shares", len(newShares))
	}
	got, err := field.Reconstruct(newShares, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("redistributed secret = %v, want %v", got, secret)
	}
}

func TestRedistributeDifferentSizes(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	secret := big.NewInt(42)
	// Shrink the committee.
	old, _ := field.Split(secret, 7, 4)
	smaller, err := Redistribute(g, old, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := field.Reconstruct(smaller, 2)
	if got.Int64() != 42 {
		t.Fatalf("shrink: %v", got)
	}
	// Chain: redistribute twice (committee i → i+1 → i+2, Section 5.4).
	again, err := Redistribute(g, smaller, 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = field.Reconstruct(again, 3)
	if got.Int64() != 42 {
		t.Fatalf("chain: %v", got)
	}
}

func TestVerifySubShare(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 3, 2)
	d, err := Deal(g, old[0], 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 4; j++ {
		if !VerifySubShare(g, d, j) {
			t.Errorf("honest sub-share %d rejected", j)
		}
	}
	if VerifySubShare(g, d, 0) || VerifySubShare(g, d, 5) {
		t.Error("out-of-range member index accepted")
	}
	if VerifySubShare(g, nil, 1) {
		t.Error("nil dealing accepted")
	}
}

func TestTamperedSubShareRejected(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 3, 2)
	d, _ := Deal(g, old[0], 4, 2)
	d.SubShares[2].Y = new(big.Int).Add(d.SubShares[2].Y, big.NewInt(1))
	if VerifySubShare(g, d, 3) {
		t.Fatal("tampered sub-share passed verification")
	}
	// Other members are unaffected.
	if !VerifySubShare(g, d, 1) {
		t.Fatal("untampered sub-share rejected")
	}
}

// A malicious old member that re-shares a wrong value is caught by comparing
// the dealing's constant-term commitment with the published commitment of
// its original share.
func TestWrongShareCommitmentDetected(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 3, 2)
	published := g.Commit(old[0].Y) // known from the previous round

	honest, _ := Deal(g, old[0], 4, 2)
	if honest.ShareCommitment().Cmp(published) != 0 {
		t.Fatal("honest dealing's commitment mismatch")
	}
	lie := shamir.Share{X: old[0].X, Y: big.NewInt(999)}
	evil, _ := Deal(g, lie, 4, 2)
	if evil.ShareCommitment().Cmp(published) == 0 {
		t.Fatal("wrong share not detected by commitment check")
	}
}

func TestCombineErrors(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 3, 2)
	d, _ := Deal(g, old[0], 4, 2)
	if _, err := Combine(g, []*Dealing{d}, 1, 2); err == nil {
		t.Error("too few dealings accepted")
	}
	d2, _ := Deal(g, old[1], 4, 2)
	if _, err := Combine(g, []*Dealing{d, d2}, 9, 2); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestDealErrors(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 3, 2)
	if _, err := Deal(g, old[0], 2, 3); err == nil {
		t.Error("newN < newT accepted")
	}
	if _, err := Deal(g, old[0], 3, 0); err == nil {
		t.Error("newT=0 accepted")
	}
}

func TestRedistributeErrors(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 3, 2)
	if _, err := Redistribute(g, old[:1], 2, 3, 2); err == nil {
		t.Error("too few old shares accepted")
	}
}

func TestDealingBytes(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 3, 2)
	d, _ := Deal(g, old[0], 4, 2)
	if d.Bytes() <= 0 {
		t.Error("Bytes() not positive")
	}
}

func BenchmarkRedistribute5to7(b *testing.B) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(123456), 5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Redistribute(g, old, 3, 7, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInsufficientSharesTyped: both VSR entry points report share shortfalls
// through the typed ErrInsufficientShares, which the runtime's hand-off
// recovery matches with errors.Is to decide between re-dealing and failing
// closed.
func TestInsufficientSharesTyped(t *testing.T) {
	g := DefaultGroup()
	field := g.Field()
	old, _ := field.Split(big.NewInt(7), 5, 3)
	if _, err := Redistribute(g, old[:2], 3, 7, 4); !errors.Is(err, ErrInsufficientShares) {
		t.Errorf("Redistribute with 2 of 3 shares: got %v, want ErrInsufficientShares", err)
	}
	d, err := Deal(g, old[0], 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(g, []*Dealing{d}, 1, 3); !errors.Is(err, ErrInsufficientShares) {
		t.Errorf("Combine with 1 of 3 dealings: got %v, want ErrInsufficientShares", err)
	}
	// Enough shares: no typed error.
	if _, err := Redistribute(g, old, 3, 7, 4); err != nil {
		t.Errorf("full redistribution failed: %v", err)
	}
}
