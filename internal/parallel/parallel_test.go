package parallel

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: results land at their input index no matter how many
// workers run or how long each item takes.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(nil, 100, workers, func(i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // shuffle completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapSequentialFallback: one worker must not spawn goroutines and must
// visit items strictly in order.
func TestMapSequentialFallback(t *testing.T) {
	var orderOK = true
	last := -1
	_, err := Map(nil, 50, 1, func(i int) (int, error) {
		if i != last+1 {
			orderOK = false
		}
		last = i
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !orderOK || last != 49 {
		t.Fatalf("sequential fallback visited items out of order (last=%d)", last)
	}
}

// TestFirstErrorPropagation: with several failing items, the lowest index
// wins deterministically.
func TestFirstErrorPropagation(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("item %d failed", i) }
	for _, workers := range []int{1, 4, 8} {
		for trial := 0; trial < 10; trial++ {
			_, err := Map(nil, 64, workers, func(i int) (int, error) {
				if i == 9 || i == 33 || i == 60 {
					return 0, errAt(i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "item 9 failed" {
				t.Fatalf("workers=%d: got error %v, want item 9's", workers, err)
			}
		}
	}
}

// TestErrorStopsDispatch: after a failure, the pool abandons remaining work
// rather than running all n items.
func TestErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(nil, 10_000, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 5_000 {
		t.Fatalf("pool kept dispatching after failure: %d of 10000 ran", n)
	}
}

// TestCancellation: a canceled context stops the pool and surfaces ctx.Err().
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, 10_000, 4, func(i int) (int, error) {
		if ran.Add(1) == 8 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Sequential path honors cancellation too.
	ran.Store(0)
	ctx2, cancel2 := context.WithCancel(context.Background())
	_, err = Map(ctx2, 10_000, 1, func(i int) (int, error) {
		if ran.Add(1) == 8 {
			cancel2()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential: got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 8 {
		t.Fatalf("sequential: ran %d items after cancel, want 8", n)
	}
}

// TestPanicRecovery: a worker panic re-raises on the caller with the original
// value preserved.
func TestPanicRecovery(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				p, ok := r.(Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want parallel.Panic", workers, r)
				}
				if p.Value != "boom" {
					t.Fatalf("workers=%d: panic value %v, want boom", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Fatalf("workers=%d: panic lost the worker stack", workers)
				}
			}()
			ForEach(nil, 32, workers, func(i int) error {
				if i == 5 {
					panic("boom")
				}
				return nil
			})
		}()
	}
}

// TestForEach exercises the no-result variant.
func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(nil, 1000, 8, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 999*1000/2 {
		t.Fatalf("sum = %d, want %d", got, 999*1000/2)
	}
}

// TestWorkersResolution: explicit count wins; zero falls back to GOMAXPROCS.
func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if os.Getenv("ARBORETUM_WORKERS") == "" {
		if got := Workers(0); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
		}
	}
	if got := Workers(-1); got < 1 {
		t.Fatalf("Workers(-1) = %d, want ≥ 1", got)
	}
}

// TestEmpty: zero items is a no-op for every worker count.
func TestEmpty(t *testing.T) {
	out, err := Map(nil, 0, 8, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || out != nil {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}
