// Package parallel is the shared execution engine for the repository's hot
// loops: a bounded worker pool with deterministic output ordering, first-error
// propagation, context cancellation, and panic forwarding.
//
// Every parallelized path in the crypto (internal/ahe, internal/bgv), runtime
// (internal/runtime), and planner (internal/planner) layers funnels through
// this package, so concurrency policy is set in exactly one place. The
// guarantees callers rely on (and tests assert):
//
//   - Deterministic ordering. Map writes result i of input i to slot i of the
//     returned slice regardless of which worker ran it or when it finished,
//     so a parallel map is a drop-in replacement for the sequential loop it
//     replaces.
//   - Sequential fallback. With one worker (or one item) the functions run
//     the plain ordered loop on the calling goroutine — no goroutines, no
//     channels — which makes `-cpu 1` runs and ARBORETUM_WORKERS=1 runs
//     bit-identical to the pre-parallel code.
//   - First-error propagation. If multiple items fail, the error of the
//     lowest-indexed failing item is returned — again independent of
//     scheduling — and remaining items are abandoned as soon as possible.
//   - Context cancellation. A canceled context stops dispatching new items
//     and returns ctx.Err() (unless an item error takes precedence).
//   - Panic forwarding. A panic in fn is captured and re-raised on the
//     calling goroutine (wrapped in a Panic with the original stack), so a
//     crashing worker cannot take down the process from a detached goroutine.
//
// Worker-count resolution (Workers) is: explicit positive argument, else the
// ARBORETUM_WORKERS environment variable, else GOMAXPROCS. See
// docs/CONCURRENCY.md for the architecture-level picture.
package parallel

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// envWorkers reads ARBORETUM_WORKERS once; 0 means "not set / invalid".
var envWorkers = sync.OnceValue(func() int {
	s := os.Getenv("ARBORETUM_WORKERS")
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0
	}
	return n
})

// Workers resolves an effective worker count: an explicit n > 0 wins, then
// the ARBORETUM_WORKERS environment variable, then GOMAXPROCS. The result is
// always ≥ 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if e := envWorkers(); e > 0 {
		return e
	}
	return runtime.GOMAXPROCS(0)
}

// Panic wraps a panic recovered from a worker goroutine so it can be
// re-raised on the caller's goroutine without losing the original stack.
type Panic struct {
	Value any    // the original panic value
	Stack []byte // stack of the panicking worker
}

func (p Panic) String() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// state tracks the first (lowest-index) failure across workers.
type state struct {
	next int64 // next index to dispatch (atomic)
	done int64 // items completed successfully (atomic)

	mu       sync.Mutex
	errIdx   int
	err      error
	panicked bool
	pval     Panic

	stop atomic.Bool
}

// fail records an item failure, keeping only the lowest-indexed one.
func (s *state) fail(i int, err error) {
	s.mu.Lock()
	if s.err == nil || i < s.errIdx {
		s.err, s.errIdx = err, i
	}
	s.mu.Unlock()
	s.stop.Store(true)
}

func (s *state) panicAt(i int, v any, stack []byte) {
	s.mu.Lock()
	if !s.panicked || i < s.errIdx {
		s.panicked, s.errIdx = true, i
		s.pval = Panic{Value: v, Stack: stack}
	}
	s.mu.Unlock()
	s.stop.Store(true)
}

// ForEach runs fn(0) … fn(n-1) on up to workers goroutines (resolved via
// Workers) and waits for completion. It returns the error of the
// lowest-indexed failing call, or ctx.Err() if the context was canceled
// before all items ran. A nil ctx never cancels. See the package comment for
// the full contract.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := run(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Map runs fn over 0 … n-1 on up to workers goroutines and returns the
// results in input order: out[i] = fn(i). On error the partial results are
// discarded and the lowest-indexed error is returned.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return run(ctx, n, workers, fn)
}

func run[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		// Sequential fast path: same goroutine, same order as the loop this
		// call replaced. Cancellation is still honored between items.
		for i := 0; i < n; i++ {
			if ctx != nil {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				default:
				}
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	st := &state{}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if st.stop.Load() {
					return
				}
				if ctx != nil {
					select {
					case <-ctx.Done():
						st.stop.Store(true)
						return
					default:
					}
				}
				i := int(atomic.AddInt64(&st.next, 1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 64<<10)
							buf = buf[:runtime.Stack(buf, false)]
							st.panicAt(i, r, buf)
						}
					}()
					v, err := fn(i)
					if err != nil {
						st.fail(i, err)
						return
					}
					out[i] = v
					atomic.AddInt64(&st.done, 1)
				}()
			}
		}()
	}
	wg.Wait()

	if st.panicked {
		panic(st.pval)
	}
	if st.err != nil {
		return nil, st.err
	}
	if int(atomic.LoadInt64(&st.done)) < n {
		// Items were skipped without an item error: the context was canceled.
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, context.Canceled
	}
	return out, nil
}
