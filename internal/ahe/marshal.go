package ahe

import (
	"encoding/binary"
	"errors"
	"math/big"
)

// Wire formats: ciphertexts and public keys travel between devices, the
// aggregator, and committees, so they need stable serializations. The format
// is a 4-byte big-endian length followed by the big-endian magnitude bytes
// of each integer.

func appendBig(buf []byte, v *big.Int) []byte {
	b := v.Bytes()
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	buf = append(buf, l[:]...)
	return append(buf, b...)
}

func readBig(buf []byte) (*big.Int, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, errors.New("ahe: truncated length prefix")
	}
	n := binary.BigEndian.Uint32(buf[:4])
	buf = buf[4:]
	if uint32(len(buf)) < n {
		return nil, nil, errors.New("ahe: truncated value")
	}
	if n > 0 && buf[0] == 0 {
		// appendBig never emits leading zeros; reject non-canonical
		// encodings so every value has exactly one wire form.
		return nil, nil, errors.New("ahe: non-canonical value encoding")
	}
	v := new(big.Int).SetBytes(buf[:n])
	return v, buf[n:], nil
}

// MarshalBinary serializes the ciphertext.
func (c *Ciphertext) MarshalBinary() ([]byte, error) {
	if c == nil || c.C == nil {
		return nil, errors.New("ahe: nil ciphertext")
	}
	return appendBig(nil, c.C), nil
}

// UnmarshalBinary deserializes a ciphertext.
func (c *Ciphertext) UnmarshalBinary(data []byte) error {
	v, rest, err := readBig(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("ahe: trailing bytes after ciphertext")
	}
	c.C = v
	return nil
}

// MarshalBinary serializes the public key (the modulus; n² is derived).
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	if pk == nil || pk.N == nil {
		return nil, errors.New("ahe: nil public key")
	}
	return appendBig(nil, pk.N), nil
}

// UnmarshalBinary deserializes a public key.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	n, rest, err := readBig(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("ahe: trailing bytes after public key")
	}
	if n.Sign() <= 0 || n.BitLen() < 128 {
		return errors.New("ahe: implausible modulus")
	}
	pk.N = n
	pk.N2 = new(big.Int).Mul(n, n)
	return nil
}
