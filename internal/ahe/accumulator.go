package ahe

import (
	"errors"
	"math/big"
)

// Accumulator is the pooled-scratch form of the aggregator's inner fold: a
// running homomorphic sum that reuses three big.Int buffers across every Add
// instead of allocating a fresh ciphertext per addition the way
// PublicKey.Add does. One Paillier addition is acc·ct mod n²; the
// accumulator computes the product into its own scratch and reduces with
// QuoRem straight back into the running value, so a steady-state fold
// performs zero heap allocations regardless of length. The streaming ingest
// pipeline (internal/runtime) keeps one accumulator per ciphertext cell per
// shard; Sum uses the same machinery for its chunk folds.
//
// An Accumulator is not safe for concurrent use. It starts empty; Add folds
// a ciphertext in (the first Add just copies), and Value/Snapshot export the
// current running sum. The exported ciphertexts are copies — mutating the
// accumulator afterwards never reaches them.
type Accumulator struct {
	pk  *PublicKey
	acc big.Int // running product mod n², meaningful only when set
	mul big.Int // double-width product scratch
	quo big.Int // quotient scratch for the modular reduction
	set bool
}

// NewAccumulator returns an empty accumulator folding under pk.
func (pk *PublicKey) NewAccumulator() *Accumulator {
	return &Accumulator{pk: pk}
}

// Empty reports whether nothing has been folded in since the last Reset.
func (a *Accumulator) Empty() bool { return !a.set }

// Reset empties the accumulator, keeping its scratch buffers.
func (a *Accumulator) Reset() { a.set = false }

// Add folds one ciphertext into the running sum.
func (a *Accumulator) Add(ct *Ciphertext) error {
	if ct == nil || ct.C == nil {
		return errors.New("ahe: nil ciphertext")
	}
	if !a.set {
		a.acc.Set(ct.C)
		a.set = true
		return nil
	}
	a.mul.Mul(&a.acc, ct.C)
	a.quo.QuoRem(&a.mul, a.pk.N2, &a.acc)
	return nil
}

// Set makes the running sum a copy of ct — restoring a checkpoint exported
// earlier with Snapshot or Value.
func (a *Accumulator) Set(ct *Ciphertext) error {
	if ct == nil || ct.C == nil {
		return errors.New("ahe: nil ciphertext")
	}
	a.acc.Set(ct.C)
	a.set = true
	return nil
}

// Value returns the running sum as a fresh ciphertext. It returns nil while
// the accumulator is empty.
func (a *Accumulator) Value() *Ciphertext {
	if !a.set {
		return nil
	}
	return &Ciphertext{C: new(big.Int).Set(&a.acc)}
}

// Snapshot copies the running sum into dst (reusing dst's limbs), for
// checkpoint buffers that rotate without allocating. dst must be non-nil
// with a non-nil C; the accumulator must not be empty.
func (a *Accumulator) Snapshot(dst *Ciphertext) error {
	if !a.set {
		return errors.New("ahe: snapshot of empty accumulator")
	}
	if dst == nil || dst.C == nil {
		return errors.New("ahe: nil snapshot destination")
	}
	dst.C.Set(&a.acc)
	return nil
}

// Fill writes the running sum's fixed-width big-endian bytes into buf
// (zero-padded on the left) and returns buf. buf must hold at least
// ⌈n².bitlen/8⌉ bytes; the fixed width makes repeated hashing of partials
// allocation-free and unambiguous. The accumulator must not be empty.
func (a *Accumulator) Fill(buf []byte) []byte {
	return a.acc.FillBytes(buf)
}
