package ahe

// Fuzz and hardening tests for the Paillier wire formats: arbitrary input to
// the ciphertext and public-key decoders must error cleanly (no panics), and
// accepted inputs must re-marshal to the same bytes and not alias the
// caller's buffer.

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func FuzzAHECiphertextUnmarshal(f *testing.F) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		f.Fatal(err)
	}
	ct, err := sk.Encrypt(rand.Reader, big.NewInt(42))
	if err != nil {
		f.Fatal(err)
	}
	valid, err := ct.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append(append([]byte(nil), valid...), 7))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Ciphertext
		if err := c.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted ciphertext failed: %v", err)
		}
		// readBig rejects non-canonical encodings, so accepted input must
		// re-marshal to the exact same bytes.
		if !bytes.Equal(out, data) {
			t.Fatal("re-marshal differs from accepted input")
		}
	})
}

func FuzzPublicKeyUnmarshal(f *testing.F) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := sk.PublicKey.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:2])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		var pk PublicKey
		if err := pk.UnmarshalBinary(data); err != nil {
			return
		}
		if pk.N.BitLen() < 128 {
			t.Fatal("accepted implausibly small modulus")
		}
		want := new(big.Int).Mul(pk.N, pk.N)
		if pk.N2.Cmp(want) != 0 {
			t.Fatal("derived n² is inconsistent")
		}
		out, err := pk.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("re-marshal differs from accepted input")
		}
	})
}

// TestAHEUnmarshalDoesNotAliasInput mutates the input buffer after a
// successful unmarshal and checks the decoded values are unaffected.
func TestAHEUnmarshalDoesNotAliasInput(t *testing.T) {
	sk := testKeyPair(t)
	ct, err := sk.Encrypt(rand.Reader, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Set(back.C)
	for i := range data {
		data[i] ^= 0xff
	}
	if back.C.Cmp(want) != 0 {
		t.Fatal("ciphertext aliases the unmarshal input buffer")
	}

	pkData, err := sk.PublicKey.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(pkData); err != nil {
		t.Fatal(err)
	}
	wantN := new(big.Int).Set(pk.N)
	for i := range pkData {
		pkData[i] ^= 0xff
	}
	if pk.N.Cmp(wantN) != 0 {
		t.Fatal("public key aliases the unmarshal input buffer")
	}
}
