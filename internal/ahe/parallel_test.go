package ahe

// Determinism tests for the parallelized paths: the chunked Sum must be
// bit-identical to the sequential fold at any worker count, and the parallel
// EncryptVector must still decrypt to the one-hot row.

import (
	"crypto/rand"
	"math/big"
	"runtime"
	"testing"
)

// TestSumChunkedBitIdentical folds the same slice sequentially and with the
// chunked parallel path and compares the raw ciphertexts. Modular
// multiplication is associative and commutative, so any chunking must give
// the exact same group element.
func TestSumChunkedBitIdentical(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	cts := make([]*Ciphertext, 2*minParallelSum+17) // odd size: uneven chunks
	for i := range cts {
		if cts[i], err = pk.Encrypt(rand.Reader, big.NewInt(int64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := pk.sumRange(cts)
	if err != nil {
		t.Fatal(err)
	}

	old := runtime.GOMAXPROCS(4) // force the parallel path even at -cpu 1
	defer runtime.GOMAXPROCS(old)
	par, err := pk.Sum(cts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.C.Cmp(par.C) != 0 {
		t.Fatal("chunked parallel Sum differs from sequential fold")
	}
}

// TestEncryptVectorParallelDecrypts checks the parallel path still produces
// a valid one-hot row with ciphertexts at their declared indices.
func TestEncryptVectorParallelDecrypts(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const length, hot = 33, 31
	vec, err := pk.EncryptVector(rand.Reader, length, hot)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range vec {
		m, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		want := int64(0)
		if i == hot {
			want = 1
		}
		if m.Int64() != want {
			t.Fatalf("slot %d decrypted to %v, want %d", i, m, want)
		}
	}
}
