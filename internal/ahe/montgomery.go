package ahe

// Montgomery-form modular arithmetic for the Paillier modexp inner loops.
//
// Every Paillier hot path is a chain of modular multiplications against one
// fixed odd modulus (n², p², or q²): the fixed-base randomizer walk in
// fixedbase.go multiplies ~120 table entries together, and decryption is a
// half-width (CRT) or full-width (lambda/mu) exponentiation. In plain form
// each step is a multiply followed by a division (Mod/QuoRem); in Montgomery
// form values are kept scaled by R = 2^(64k) and a step is a CIOS
// (coarsely-integrated operand scanning) interleaved multiply-reduce that
// replaces the division with shifts and single-word multiplies. Conversion in
// and out of Montgomery form costs one multiply each, amortized over the
// whole chain.
//
// The representation is a fixed-width little-endian []uint64 limb vector —
// not math/big — so the inner loop is three bits.Mul64/Add64 chains with no
// allocation and no per-step normalization. montCtx carries the modulus
// constants; newMontCtx returns nil when the platform word size is not 64
// bits (math/big words and our limbs would disagree), and every caller falls
// back to the math/big path in that case, so correctness never depends on
// the fast path. Property tests in montgomery_test.go check mul and exp
// against math/big over random moduli.

import (
	"math/big"
	"math/bits"
)

// montCtx holds the per-modulus constants for Montgomery arithmetic: the
// modulus limbs, the negated inverse of its low word, and the residues of R
// and R² used for conversions. It is immutable after newMontCtx and safe for
// concurrent use; the mutable state lives in caller-owned scratch.
type montCtx struct {
	mBig *big.Int
	m    []uint64 // modulus, k little-endian limbs
	n0   uint64   // −m⁻¹ mod 2^64
	rone []uint64 // R mod m: the Montgomery form of 1
	r2   []uint64 // R² mod m: toMont multiplier
	oneW []uint64 // plain 1, k limbs: fromMont multiplier
	k    int
}

// newMontCtx builds the constants for an odd modulus m > 0. It returns nil —
// meaning "use the math/big fallback" — on non-64-bit platforms or for even
// or non-positive moduli.
func newMontCtx(m *big.Int) *montCtx {
	if bits.UintSize != 64 || m.Sign() <= 0 || m.Bit(0) == 0 {
		return nil
	}
	k := len(m.Bits())
	mc := &montCtx{mBig: new(big.Int).Set(m), k: k}
	mc.m = make([]uint64, k)
	wordsTo(mc.m, m)
	// Newton–Hensel iteration for m⁻¹ mod 2^64: for odd m the seed m[0] is
	// correct to 3 bits and each step doubles the precision, so five steps
	// reach 96 ≥ 64 bits (a sixth is free insurance).
	inv := mc.m[0]
	for i := 0; i < 6; i++ {
		inv *= 2 - mc.m[0]*inv
	}
	mc.n0 = -inv
	r := new(big.Int).Lsh(one, uint(64*k))
	mc.rone = make([]uint64, k)
	wordsTo(mc.rone, new(big.Int).Mod(r, m))
	r.Mul(r, r)
	mc.r2 = make([]uint64, k)
	wordsTo(mc.r2, r.Mod(r, m))
	mc.oneW = make([]uint64, k)
	mc.oneW[0] = 1
	return mc
}

// scratchLen is the CIOS working-vector length for a k-limb modulus.
func (mc *montCtx) scratchLen() int { return mc.k + 2 }

// wordsTo copies x's magnitude into dst, zero-padding high limbs. x must be
// non-negative and fit in len(dst) limbs.
func wordsTo(dst []uint64, x *big.Int) {
	w := x.Bits()
	if len(w) > len(dst) {
		panic("ahe: montgomery operand wider than modulus")
	}
	for i := range dst {
		if i < len(w) {
			dst[i] = uint64(w[i])
		} else {
			dst[i] = 0
		}
	}
}

// setFromWords sets z to the value of the little-endian limb vector w,
// reusing z's existing backing array when it is large enough.
func setFromWords(z *big.Int, w []uint64) {
	bw := z.Bits()[:0]
	for _, x := range w {
		bw = append(bw, big.Word(x))
	}
	z.SetBits(bw)
}

// montMul computes z = x·y·R⁻¹ mod m (CIOS): the Montgomery product of two
// k-limb operands in [0, m). t is caller scratch of mc.scratchLen() limbs; z
// may alias x or y (the product accumulates in t and is copied out last).
func montMul(z, x, y []uint64, mc *montCtx, t []uint64) {
	k := mc.k
	m := mc.m
	t = t[:k+2]
	for i := range t {
		t[i] = 0
	}
	for i := 0; i < k; i++ {
		// t += x[i]·y
		var c uint64
		xi := x[i]
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[j] = lo
			c = hi
		}
		var cc uint64
		t[k], cc = bits.Add64(t[k], c, 0)
		tk1 := cc
		// t = (t + μ·m) / 2^64 with μ chosen so the low limb cancels.
		mu := t[0] * mc.n0
		hi, lo := bits.Mul64(mu, m[0])
		_, cc = bits.Add64(lo, t[0], 0)
		c = hi + cc
		for j := 1; j < k; j++ {
			hi, lo := bits.Mul64(mu, m[j])
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			t[j-1] = lo
			c = hi
		}
		t[k-1], cc = bits.Add64(t[k], c, 0)
		t[k] = tk1 + cc
	}
	// Conditional final subtraction: the loop invariant keeps t < 2m.
	if t[k] != 0 || geqWords(t[:k], m) {
		var borrow uint64
		for j := 0; j < k; j++ {
			t[j], borrow = bits.Sub64(t[j], m[j], borrow)
		}
	}
	copy(z, t[:k])
}

// geqWords reports a ≥ b for equal-length little-endian limb vectors.
func geqWords(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
		// equal limb: keep scanning
	}
	return true
}

// exp computes x^e mod m via 4-bit fixed-window Montgomery exponentiation:
// the value-for-value replacement for (*big.Int).Exp on the decryption paths
// (decryptCRT's two half-width exponentiations and the lambda/mu fallback).
// It allocates its own scratch — decryption is not on an alloc-gated path —
// and is safe for concurrent use (montCtx is read-only).
func (mc *montCtx) exp(x, e *big.Int) *big.Int {
	if e.Sign() == 0 {
		// x^0 = 1 mod m (0 when m = 1).
		return new(big.Int).Mod(one, mc.mBig)
	}
	k := mc.k
	t := make([]uint64, mc.scratchLen())
	var xr big.Int
	xr.Mod(x, mc.mBig)
	xm := make([]uint64, k)
	wordsTo(xm, &xr)
	montMul(xm, xm, mc.r2, mc, t)
	// tab[d] = x^d in Montgomery form, d = 0..15.
	tab := make([][]uint64, 16)
	tab[0] = mc.rone
	tab[1] = xm
	for d := 2; d < 16; d++ {
		tab[d] = make([]uint64, k)
		montMul(tab[d], tab[d-1], xm, mc, t)
	}
	acc := make([]uint64, k)
	copy(acc, mc.rone)
	limbs := e.Bits()
	windows := (e.BitLen() + 3) / 4
	for i := windows - 1; i >= 0; i-- {
		for s := 0; s < 4; s++ {
			montMul(acc, acc, acc, mc, t)
		}
		bitPos := 4 * i
		d := (uint64(limbs[bitPos>>6]) >> (bitPos & 63)) & 0xf
		if d != 0 {
			montMul(acc, acc, tab[d], mc, t)
		}
	}
	montMul(acc, acc, mc.oneW, mc, t)
	z := new(big.Int)
	setFromWords(z, acc)
	return z
}
