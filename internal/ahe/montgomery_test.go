package ahe

// Property tests for the Montgomery limb kernel against math/big: montMul and
// montCtx.exp are checked word-for-word over random odd moduli of varying
// width, and the decryption paths that ride on them (CRT with factors,
// lambda/mu without) are exercised with and without the fast path so the
// math/big fallbacks stay correct, not just present.

import (
	"crypto/rand"
	"math/big"
	"testing"

	"arboretum/internal/benchrand"
)

// randOdd draws a random odd modulus of exactly the given bit length from
// the deterministic stream.
func randOdd(t *testing.T, rng *benchrand.Reader, bits int) *big.Int {
	t.Helper()
	buf := make([]byte, (bits+7)/8)
	if _, err := rng.Read(buf); err != nil {
		t.Fatal(err)
	}
	m := new(big.Int).SetBytes(buf)
	m.SetBit(m, bits-1, 1) // full width
	m.SetBit(m, 0, 1)      // odd
	return m
}

func randBelow(t *testing.T, rng *benchrand.Reader, m *big.Int) *big.Int {
	t.Helper()
	buf := make([]byte, len(m.Bytes())+8)
	if _, err := rng.Read(buf); err != nil {
		t.Fatal(err)
	}
	x := new(big.Int).SetBytes(buf)
	return x.Mod(x, m)
}

func TestMontMulMatchesBig(t *testing.T) {
	rng := benchrand.New(0x30171)
	for _, bits := range []int{64, 65, 127, 128, 192, 256, 521, 1024, 2048} {
		for trial := 0; trial < 8; trial++ {
			m := randOdd(t, rng, bits)
			mc := newMontCtx(m)
			if mc == nil {
				t.Fatalf("%d bits: no Montgomery context on a 64-bit platform", bits)
			}
			x := randBelow(t, rng, m)
			y := randBelow(t, rng, m)
			xw := make([]uint64, mc.k)
			yw := make([]uint64, mc.k)
			zw := make([]uint64, mc.k)
			scratch := make([]uint64, mc.scratchLen())
			wordsTo(xw, x)
			wordsTo(yw, y)
			// montMul(x, y) = x·y·R⁻¹; multiplying by R² first gives the
			// plain product: toMont(x)·y → x·y.
			montMul(zw, xw, mc.r2, mc, scratch)
			montMul(zw, zw, yw, mc, scratch)
			var got big.Int
			setFromWords(&got, zw)
			want := new(big.Int).Mul(x, y)
			want.Mod(want, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("%d bits trial %d: montMul gave %v, want %v", bits, trial, &got, want)
			}
		}
	}
}

func TestMontMulAliasing(t *testing.T) {
	rng := benchrand.New(0x30172)
	m := randOdd(t, rng, 192)
	mc := newMontCtx(m)
	x := randBelow(t, rng, m)
	xw := make([]uint64, mc.k)
	scratch := make([]uint64, mc.scratchLen())
	wordsTo(xw, x)
	// z aliasing both operands: x → x²·R⁻¹ in place.
	montMul(xw, xw, xw, mc, scratch)
	var got big.Int
	setFromWords(&got, xw)
	rInv := new(big.Int).ModInverse(new(big.Int).Lsh(one, uint(64*mc.k)), m)
	want := new(big.Int).Mul(x, x)
	want.Mul(want, rInv)
	want.Mod(want, m)
	if got.Cmp(want) != 0 {
		t.Fatalf("aliased square gave %v, want %v", &got, want)
	}
}

func TestMontExpMatchesBig(t *testing.T) {
	rng := benchrand.New(0x30173)
	for _, bits := range []int{64, 128, 256, 1024} {
		for trial := 0; trial < 4; trial++ {
			m := randOdd(t, rng, bits)
			mc := newMontCtx(m)
			x := randBelow(t, rng, m)
			e := randBelow(t, rng, m)
			got := mc.exp(x, e)
			want := new(big.Int).Exp(x, e, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("%d bits trial %d: exp gave %v, want %v", bits, trial, got, want)
			}
		}
	}
}

func TestMontExpEdgeCases(t *testing.T) {
	rng := benchrand.New(0x30174)
	m := randOdd(t, rng, 128)
	mc := newMontCtx(m)
	x := randBelow(t, rng, m)
	cases := []struct {
		name string
		x, e *big.Int
	}{
		{"zero exponent", x, big.NewInt(0)},
		{"one exponent", x, big.NewInt(1)},
		{"zero base", big.NewInt(0), big.NewInt(7)},
		{"base one", big.NewInt(1), x},
		{"base above modulus", new(big.Int).Add(x, m), big.NewInt(3)},
		{"exponent 16 (window boundary)", x, big.NewInt(16)},
		{"exponent 2^64 (limb boundary)", x, new(big.Int).Lsh(one, 64)},
	}
	for _, tc := range cases {
		got := mc.exp(tc.x, tc.e)
		want := new(big.Int).Exp(tc.x, tc.e, m)
		if got.Cmp(want) != 0 {
			t.Errorf("%s: got %v, want %v", tc.name, got, want)
		}
	}
	if mc := newMontCtx(big.NewInt(6)); mc != nil {
		t.Error("newMontCtx accepted an even modulus")
	}
	if mc := newMontCtx(big.NewInt(0)); mc != nil {
		t.Error("newMontCtx accepted zero")
	}
	if mc := newMontCtx(big.NewInt(-7)); mc != nil {
		t.Error("newMontCtx accepted a negative modulus")
	}
}

// TestDecryptCRTAndFallback checks the three decryption configurations
// against each other on one keypair: the CRT path with Montgomery contexts
// (as generated), the CRT path with the contexts stripped (math/big
// fallback), and the FromSecrets lambda/mu path with and without its
// Montgomery context.
func TestDecryptCRTAndFallback(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	msgs := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(424242),
		new(big.Int).Sub(pk.N, one), // n−1 decrypts as −1
	}
	for _, m := range msgs {
		ct, err := pk.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		// Strip the half-width Montgomery contexts: decryptCRT must fall
		// back to math/big Exp and agree.
		noMont := *sk
		noMont.mcP2, noMont.mcQ2, noMont.mcN2 = nil, nil, nil
		got, err := noMont.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("CRT fallback: got %v, want %v", got, want)
		}
		// FromSecrets has no factorization: lambda/mu path, Montgomery.
		fs := FromSecrets(pk, sk.Lambda(), sk.Mu())
		if fs.mcN2 == nil {
			t.Fatal("FromSecrets did not build an n² Montgomery context")
		}
		got, err = fs.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("FromSecrets: got %v, want %v", got, want)
		}
		// And the lambda/mu math/big fallback.
		fs.mcN2 = nil
		got, err = fs.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("FromSecrets fallback: got %v, want %v", got, want)
		}
	}
}

// TestFixedBaseFallbackMatchesMontgomery pins the two randomPower
// implementations to each other: with the same exponent stream the math/big
// table walk and the Montgomery table walk must produce the same randomizer,
// and encryptions through either must decrypt identically.
func TestFixedBaseFallbackMatchesMontgomery(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	if pk.fb == nil || pk.fb.mc == nil {
		t.Fatal("generated key has no Montgomery fixed-base table")
	}
	// The plain table the Montgomery conversion superseded.
	plain := newFixedBasePlain(pk.N, pk.N2)
	for seed := uint64(0); seed < 4; seed++ {
		a, err := pk.fb.randomPower(benchrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.randomPower(benchrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if a.Cmp(b) != 0 {
			t.Fatalf("seed %d: Montgomery walk %v, math/big walk %v", seed, a, b)
		}
	}
	// Encrypt through the fallback fixed base and decrypt normally.
	msg := big.NewInt(123456789)
	ct, err := pk.encrypt(rand.Reader, msg, plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(msg) != 0 {
		t.Fatalf("fallback-table encryption decrypted to %v", got)
	}
}

// TestAHEPooledBuffersDoNotEscape is the ahe side of the pooling fence: a
// ciphertext returned by Encrypt or Sum must be unaffected by later calls
// that reuse the pooled scratch (fbScratch, the package Accumulator pool).
func TestAHEPooledBuffersDoNotEscape(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	first, err := pk.Encrypt(rand.Reader, big.NewInt(11))
	if err != nil {
		t.Fatal(err)
	}
	firstWords := append([]big.Word(nil), first.C.Bits()...)
	second, err := pk.Encrypt(rand.Reader, big.NewInt(22))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pk.Sum([]*Ciphertext{first, second})
	if err != nil {
		t.Fatal(err)
	}
	sumWords := append([]big.Word(nil), sum.C.Bits()...)
	// Churn the pools.
	for i := 0; i < 8; i++ {
		if _, err := pk.Encrypt(rand.Reader, big.NewInt(int64(100+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := pk.Sum([]*Ciphertext{second, second}); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range firstWords {
		if first.C.Bits()[i] != w {
			t.Fatal("issued ciphertext changed under pool reuse")
		}
	}
	for i, w := range sumWords {
		if sum.C.Bits()[i] != w {
			t.Fatal("issued sum changed under pool reuse")
		}
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 33 {
		t.Fatalf("sum decrypts to %v after pool churn, want 33", got)
	}
}
