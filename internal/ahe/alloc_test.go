//go:build !race

package ahe

// Allocation-regression gates for the Paillier hot paths, the ahe half of
// the zero-alloc discipline (docs/KERNELS.md): encryption rides the pooled
// fixed-base scratch and a single result box, the additive fold reuses the
// accumulator's big.Int receivers, and Sum draws its accumulator from a
// pool. The ceilings are the measured steady-state counts with no slack;
// math/big reuses a receiver's limb array once it has grown to size, so
// after warmup these paths do not touch the heap beyond the result values.
// Excluded under -race: the race runtime adds its own shadow allocations,
// so the counts are meaningless there — scripts/check.sh runs the gates in
// the plain pass.

import (
	"math/big"
	"testing"

	"arboretum/internal/benchrand"
)

func allocCeiling(t *testing.T, name string, max float64, f func()) {
	t.Helper()
	for i := 0; i < 3; i++ {
		f() // warm the scratch pools and grow the reused receivers
	}
	if got := testing.AllocsPerRun(10, f); got > max {
		t.Errorf("%s: %.1f allocs/op, ceiling %.0f", name, got, max)
	}
}

func TestAllocGatePaillier(t *testing.T) {
	t.Setenv("ARBORETUM_WORKERS", "1")
	rng := benchrand.New(0xA110E)
	sk, err := GenerateKey(rng, 512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	msg := big.NewInt(7)
	ct, err := pk.Encrypt(rng, msg)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*Ciphertext, 48)
	for i := range cts {
		cts[i] = ct
	}
	acc := pk.NewAccumulator()
	allocCeiling(t, "ahe.Encrypt", 2, func() {
		if _, err := pk.Encrypt(rng, msg); err != nil {
			t.Fatal(err)
		}
	})
	allocCeiling(t, "ahe.Accumulator.Add", 0, func() {
		if err := acc.Add(ct); err != nil {
			t.Fatal(err)
		}
	})
	allocCeiling(t, "ahe.Sum", 2, func() {
		if _, err := pk.Sum(cts); err != nil {
			t.Fatal(err)
		}
	})
	// Two per slot (the ciphertext box and its limbs) plus the result slice
	// and parallel.Map's error bookkeeping.
	const vecLen = 16
	allocCeiling(t, "ahe.EncryptVector", 2*vecLen+2, func() {
		if _, err := pk.EncryptVector(rng, vecLen, 3); err != nil {
			t.Fatal(err)
		}
	})
}
