package ahe

import (
	"math/big"
	"testing"

	"arboretum/internal/benchrand"
)

// TestAccumulatorMatchesAdd checks that the pooled fold is bit-identical to
// a chain of PublicKey.Add, including across Reset/Set checkpoint cycles.
func TestAccumulatorMatchesAdd(t *testing.T) {
	sk, err := GenerateKey(benchrand.New(1), 256)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	rng := benchrand.New(2)
	cts := make([]*Ciphertext, 33)
	want := big.NewInt(0)
	for i := range cts {
		m := big.NewInt(int64(i % 5))
		want.Add(want, m)
		if cts[i], err = pk.Encrypt(rng, m); err != nil {
			t.Fatal(err)
		}
	}

	ref := cts[0]
	for _, ct := range cts[1:] {
		if ref, err = pk.Add(ref, ct); err != nil {
			t.Fatal(err)
		}
	}

	acc := pk.NewAccumulator()
	if !acc.Empty() {
		t.Fatal("new accumulator not empty")
	}
	for i, ct := range cts {
		if err := acc.Add(ct); err != nil {
			t.Fatal(err)
		}
		// Exercise the checkpoint cycle mid-fold: snapshot, reset, restore.
		if i == len(cts)/2 {
			snap := &Ciphertext{C: new(big.Int)}
			if err := acc.Snapshot(snap); err != nil {
				t.Fatal(err)
			}
			acc.Reset()
			if !acc.Empty() {
				t.Fatal("reset accumulator not empty")
			}
			if err := acc.Set(snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := acc.Value()
	if got.C.Cmp(ref.C) != 0 {
		t.Fatal("accumulator fold differs from Add chain")
	}
	// Value must be a copy: further folding must not reach it.
	if err := acc.Add(cts[0]); err != nil {
		t.Fatal(err)
	}
	if got.C.Cmp(ref.C) != 0 {
		t.Fatal("Value aliases accumulator state")
	}
	m, err := sk.Decrypt(got)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cmp(want) != 0 {
		t.Fatalf("accumulator sum decrypts to %v, want %v", m, want)
	}

	// Fill's fixed-width encoding must match FillBytes on the exported value.
	buf := make([]byte, (pk.N2.BitLen()+7)/8)
	fill := append([]byte(nil), acc.Fill(buf)...)
	val := acc.Value()
	if string(val.C.FillBytes(buf)) != string(fill) {
		t.Fatal("Fill differs from FillBytes of Value")
	}
}

// TestAccumulatorErrors covers the fail-closed edges of the checkpoint API.
func TestAccumulatorErrors(t *testing.T) {
	sk, err := GenerateKey(benchrand.New(3), 256)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	acc := pk.NewAccumulator()
	if err := acc.Add(nil); err == nil {
		t.Fatal("Add(nil) did not error")
	}
	if err := acc.Add(&Ciphertext{}); err == nil {
		t.Fatal("Add of nil-valued ciphertext did not error")
	}
	if err := acc.Set(nil); err == nil {
		t.Fatal("Set(nil) did not error")
	}
	if got := acc.Value(); got != nil {
		t.Fatal("empty Value not nil")
	}
	if err := acc.Snapshot(&Ciphertext{C: new(big.Int)}); err == nil {
		t.Fatal("empty Snapshot did not error")
	}
	ct, err := pk.Encrypt(benchrand.New(4), big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(ct); err != nil {
		t.Fatal(err)
	}
	if err := acc.Snapshot(nil); err == nil {
		t.Fatal("Snapshot(nil) did not error")
	}
	if err := acc.Snapshot(&Ciphertext{}); err == nil {
		t.Fatal("Snapshot into nil-valued ciphertext did not error")
	}
}
