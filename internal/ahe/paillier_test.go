package ahe

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKey caches a keypair: Paillier keygen is the slow part and the tests
// only need one.
var (
	keyOnce sync.Once
	key     *PrivateKey
)

func testKeyPair(t testing.TB) *PrivateKey {
	keyOnce.Do(func() {
		var err error
		key, err = GenerateKey(rand.Reader, 512)
		if err != nil {
			panic(err)
		}
	})
	return key
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 64); err == nil {
		t.Fatal("64-bit key accepted")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	sk := testKeyPair(t)
	for _, m := range []int64{0, 1, 42, 1 << 40, -1, -999999} {
		ct, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Errorf("Decrypt(Encrypt(%d)) = %v", m, got)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.Encrypt(rand.Reader, big.NewInt(5))
	b, _ := sk.Encrypt(rand.Reader, big.NewInt(5))
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.Encrypt(rand.Reader, big.NewInt(1000))
	b, _ := sk.Encrypt(rand.Reader, big.NewInt(234))
	sum, err := sk.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := sk.Decrypt(sum)
	if got.Int64() != 1234 {
		t.Fatalf("E(1000) ⊞ E(234) decrypts to %v", got)
	}
}

func TestAddPlainMulPlain(t *testing.T) {
	sk := testKeyPair(t)
	a, _ := sk.Encrypt(rand.Reader, big.NewInt(10))
	ap, err := sk.AddPlain(a, big.NewInt(32))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := sk.Decrypt(ap)
	if got.Int64() != 42 {
		t.Fatalf("AddPlain: %v", got)
	}
	mp, err := sk.MulPlain(a, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	got, _ = sk.Decrypt(mp)
	if got.Int64() != 70 {
		t.Fatalf("MulPlain: %v", got)
	}
}

func TestSum(t *testing.T) {
	sk := testKeyPair(t)
	var cts []*Ciphertext
	want := int64(0)
	for i := int64(1); i <= 20; i++ {
		ct, _ := sk.Encrypt(rand.Reader, big.NewInt(i))
		cts = append(cts, ct)
		want += i
	}
	sum, err := sk.Sum(cts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := sk.Decrypt(sum)
	if got.Int64() != want {
		t.Fatalf("Sum = %v, want %d", got, want)
	}
}

func TestSumEmpty(t *testing.T) {
	sk := testKeyPair(t)
	if _, err := sk.Sum(nil); err == nil {
		t.Fatal("empty Sum accepted")
	}
}

func TestEncryptVector(t *testing.T) {
	sk := testKeyPair(t)
	vec, err := sk.EncryptVector(rand.Reader, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range vec {
		got, _ := sk.Decrypt(ct)
		want := int64(0)
		if i == 2 {
			want = 1
		}
		if got.Int64() != want {
			t.Errorf("vec[%d] = %v, want %d", i, got, want)
		}
	}
	if _, err := sk.EncryptVector(rand.Reader, 5, 5); err == nil {
		t.Error("out-of-range hot index accepted")
	}
	if _, err := sk.EncryptVector(rand.Reader, 5, -1); err == nil {
		t.Error("negative hot index accepted")
	}
}

// One-hot aggregation: the core AHE workload of the paper — sum many one-hot
// vectors and read off category counts.
func TestOneHotAggregation(t *testing.T) {
	sk := testKeyPair(t)
	const categories = 4
	counts := [categories]int64{}
	perCat := make([][]*Ciphertext, 0, 12)
	for d := 0; d < 12; d++ {
		hot := d % categories
		counts[hot]++
		vec, err := sk.EncryptVector(rand.Reader, categories, hot)
		if err != nil {
			t.Fatal(err)
		}
		perCat = append(perCat, vec)
	}
	for c := 0; c < categories; c++ {
		col := make([]*Ciphertext, len(perCat))
		for d := range perCat {
			col[d] = perCat[d][c]
		}
		sum, _ := sk.Sum(col)
		got, _ := sk.Decrypt(sum)
		if got.Int64() != counts[c] {
			t.Errorf("category %d count = %v, want %d", c, got, counts[c])
		}
	}
}

func TestDecryptRejectsBadCiphertext(t *testing.T) {
	sk := testKeyPair(t)
	if _, err := sk.Decrypt(nil); err == nil {
		t.Error("nil ciphertext accepted")
	}
	if _, err := sk.Decrypt(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Error("zero ciphertext accepted")
	}
	if _, err := sk.Decrypt(&Ciphertext{C: new(big.Int).Set(sk.N2)}); err == nil {
		t.Error("out-of-range ciphertext accepted")
	}
}

func TestNilCiphertextOps(t *testing.T) {
	sk := testKeyPair(t)
	ct, _ := sk.Encrypt(rand.Reader, big.NewInt(1))
	if _, err := sk.Add(nil, ct); err == nil {
		t.Error("Add(nil, ct) accepted")
	}
	if _, err := sk.AddPlain(nil, big.NewInt(1)); err == nil {
		t.Error("AddPlain(nil) accepted")
	}
	if _, err := sk.MulPlain(nil, big.NewInt(1)); err == nil {
		t.Error("MulPlain(nil) accepted")
	}
}

func TestKeyReassembly(t *testing.T) {
	sk := testKeyPair(t)
	re := FromSecrets(&sk.PublicKey, sk.Lambda(), sk.Mu())
	ct, _ := sk.Encrypt(rand.Reader, big.NewInt(777))
	got, err := re.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 777 {
		t.Fatalf("reassembled key decrypted %v", got)
	}
}

func TestCiphertextBytes(t *testing.T) {
	sk := testKeyPair(t)
	ct, _ := sk.Encrypt(rand.Reader, big.NewInt(1))
	if ct.Bytes() <= 0 || ct.Bytes() > 1024/8+1 {
		t.Errorf("Bytes() = %d for 512-bit key", ct.Bytes())
	}
	var nilCt *Ciphertext
	if nilCt.Bytes() != 0 {
		t.Error("nil ciphertext Bytes() != 0")
	}
}

// Property: homomorphic addition matches plaintext addition.
func TestQuickHomomorphism(t *testing.T) {
	sk := testKeyPair(t)
	f := func(a, b int32) bool {
		ca, err1 := sk.Encrypt(rand.Reader, big.NewInt(int64(a)))
		cb, err2 := sk.Encrypt(rand.Reader, big.NewInt(int64(b)))
		if err1 != nil || err2 != nil {
			return false
		}
		sum, err := sk.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := sk.Decrypt(sum)
		return err == nil && got.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	sk := testKeyPair(b)
	m := big.NewInt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	sk := testKeyPair(b)
	x, _ := sk.Encrypt(rand.Reader, big.NewInt(1))
	y, _ := sk.Encrypt(rand.Reader, big.NewInt(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Add(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	sk := testKeyPair(b)
	ct, _ := sk.Encrypt(rand.Reader, big.NewInt(123))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	sk := testKeyPair(t)
	ct, _ := sk.Encrypt(rand.Reader, big.NewInt(424242))
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(&back)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 424242 {
		t.Fatalf("round-tripped ciphertext decrypts to %v", got)
	}
	// Truncation and trailing garbage are rejected.
	if err := back.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	if err := back.UnmarshalBinary(append(data, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if err := back.UnmarshalBinary([]byte{0, 0}); err == nil {
		t.Error("short buffer accepted")
	}
	var nilCt *Ciphertext
	if _, err := nilCt.MarshalBinary(); err == nil {
		t.Error("nil ciphertext marshaled")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	sk := testKeyPair(t)
	data, err := sk.PublicKey.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// The deserialized key must encrypt values the original key decrypts.
	ct, err := pk.Encrypt(rand.Reader, big.NewInt(77))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 77 {
		t.Fatalf("deserialized key roundtrip = %v", got)
	}
	// Implausible moduli are rejected.
	if err := pk.UnmarshalBinary(appendBig(nil, big.NewInt(12345))); err == nil {
		t.Error("tiny modulus accepted")
	}
}
