package ahe

// Benchmarks for the parallelized hot paths. Run with -cpu to compare the
// sequential fallback against the worker pool, e.g.
//
//	go test ./internal/ahe -bench 'EncryptVector|Sum' -cpu 1,4
//
// At -cpu 1 the pool takes its sequential fast path, so that column is the
// pre-parallel baseline.
//
// All randomness comes from internal/benchrand so every run measures the
// same keys and plaintexts (the randsource invariant for bench files).

import (
	"math/big"
	"sync"
	"testing"

	"arboretum/internal/benchrand"
)

func benchKey(b *testing.B) *PrivateKey {
	b.Helper()
	sk, err := GenerateKey(benchrand.New(1), 512)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

// BenchmarkEncryptVector times the device-side input step: one-hot encrypting
// a 64-category row (64 Paillier encryptions per iteration).
func BenchmarkEncryptVector(b *testing.B) {
	pk := &benchKey(b).PublicKey
	rng := benchrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.EncryptVector(rng, 64, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKey2048 caches a deployment-size 2048-bit keypair (keygen at this
// size takes seconds, so share it across the 2048-bit benchmarks).
var (
	key2048Once sync.Once
	key2048     *PrivateKey
)

func benchKey2048(b *testing.B) *PrivateKey {
	b.Helper()
	key2048Once.Do(func() {
		sk, err := GenerateKey(benchrand.New(3), 2048)
		if err != nil {
			panic(err)
		}
		key2048 = sk
	})
	return key2048
}

// BenchmarkDecrypt2048 times one decryption at the deployment key size —
// the committee-side kernel of AHE-sum plans.
func BenchmarkDecrypt2048(b *testing.B) {
	sk := benchKey2048(b)
	ct, err := sk.Encrypt(benchrand.New(4), big.NewInt(123456))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sk.Decrypt(ct)
		if err != nil {
			b.Fatal(err)
		}
		if m.Int64() != 123456 {
			b.Fatalf("decrypted %v", m)
		}
	}
}

// BenchmarkEncrypt2048 times one encryption at the deployment key size —
// the device-side kernel of AHE-sum plans.
func BenchmarkEncrypt2048(b *testing.B) {
	sk := benchKey2048(b)
	pk := &sk.PublicKey
	m := big.NewInt(1)
	rng := benchrand.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(rng, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSum times the aggregator's fold over 1024 ciphertexts.
func BenchmarkSum(b *testing.B) {
	sk := benchKey(b)
	pk := &sk.PublicKey
	rng := benchrand.New(6)
	cts := make([]*Ciphertext, 1024)
	for i := range cts {
		ct, err := pk.Encrypt(rng, big.NewInt(int64(i%3)))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	b.ResetTimer()
	var got *Ciphertext
	for i := 0; i < b.N; i++ {
		var err error
		got, err = pk.Sum(cts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m, err := sk.Decrypt(got)
	if err != nil {
		b.Fatal(err)
	}
	if m.Int64() != 1023 { // sum of i%3 over i = 0..1023
		b.Fatalf("sum decrypted to %v, want 1023", m)
	}
}
