// Package ahe implements additively homomorphic encryption (Paillier).
//
// Arboretum inserts AHE for confidential values that are only ever added
// (Section 4.5): in the common one-hot-encoded plans, each device encrypts
// its input vector and the aggregator sums a billion ciphertexts without
// learning anything. The paper's prototype uses the additive subset of BGV;
// we provide Paillier here because it is a real AHE scheme implementable on
// the standard library alone, with identical homomorphic semantics
// (E(a) ⊞ E(b) = E(a+b)). The cost model charges AHE operations at the
// paper's BGV-derived rates regardless of the concrete scheme, so the plan
// costs are unaffected by this substitution (see DESIGN.md).
//
// # Thread safety
//
// PublicKey and PrivateKey are immutable after creation: every method only
// reads them, so a single key may be shared freely across goroutines.
// Ciphertext values are not synchronized — callers must not mutate a
// ciphertext that another goroutine is reading. The vector operations
// (EncryptVector, Sum) parallelize internally across parallel.Workers(0)
// goroutines; both produce bit-identical results at any worker count
// (EncryptVector's outputs are index-ordered, and Sum's chunked fold relies
// on modular multiplication being associative and commutative). Randomness
// readers passed to EncryptVector are wrapped with a mutex unless they are
// crypto/rand.Reader, which is already safe for concurrent use. See
// docs/CONCURRENCY.md.
package ahe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"arboretum/internal/fixed"
	"arboretum/internal/parallel"
)

var (
	one  = big.NewInt(1)
	zero = big.NewInt(0)
)

// ctBox bundles a ciphertext header with its big.Int value so a hot-path
// result costs one struct allocation plus one limb allocation — the whole
// steady-state budget of sumRange and encrypt.
type ctBox struct {
	ct Ciphertext
	v  big.Int
}

// newCiphertextFrom returns a fresh ciphertext holding a copy of v.
func newCiphertextFrom(v *big.Int) *Ciphertext {
	b := &ctBox{}
	b.v.Set(v)
	b.ct.C = &b.v
	return &b.ct
}

// PublicKey is a Paillier public key (n, g = n+1). It is immutable after
// key generation: all methods are safe for concurrent use, and several
// (EncryptVector, Sum) fan work out over a pool internally.
type PublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // n^2, cached

	// fb is the precomputed fixed-base table that accelerates the r^n mod n²
	// factor of every encryption (see fixedbase.go). GenerateKey populates
	// it; keys built by hand or deserialized leave it nil, in which case
	// Encrypt falls back to the textbook exponentiation and EncryptVector
	// builds one table shared across its per-slot encryptions. The table is
	// immutable, so copying the key copies the pointer safely.
	fb *fixedBase
}

// PrivateKey holds the factorization-derived decryption values. Like the
// public key it is immutable after generation and safe for concurrent use.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod n^2))^-1 mod n

	// CRT acceleration: GenerateKey records the prime factors so Decrypt can
	// exponentiate mod p² and q² separately (~4× at 2048-bit keys) and
	// recombine. Keys reassembled from shared secrets via FromSecrets have no
	// factorization — p stays nil and Decrypt takes the lambda/mu path.
	p, q       *big.Int
	p2, q2     *big.Int // p², q²
	pm1, qm1   *big.Int // p−1 and q−1, the CRT decryption exponents
	hp, hq     *big.Int // L_p(g^{p−1} mod p²)^{-1} mod p and the q analogue
	pInvQ      *big.Int // p^{-1} mod q, for the CRT recombination
	mcP2, mcQ2 *montCtx // Montgomery contexts for the two half-width moduli
	mcN2       *montCtx // Montgomery context for n², the lambda/mu path
}

// Ciphertext is a Paillier ciphertext.
type Ciphertext struct {
	C *big.Int
}

// Bytes returns the serialized size, used by the cost model and the runtime's
// traffic accounting.
func (c *Ciphertext) Bytes() int {
	if c == nil || c.C == nil {
		return 0
	}
	return (c.C.BitLen() + 7) / 8
}

// GenerateKey creates a Paillier keypair with an n of the given bit length.
// bits must be at least 128 (tests use small keys; deployments use ≥ 2048).
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, errors.New("ahe: key too small")
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		n2 := new(big.Int).Mul(n, n)
		// g = n+1, so g^lambda mod n^2 = 1 + n·lambda mod n^2 and
		// L(g^lambda) = lambda mod n; mu = lambda^-1 mod n.
		mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
		if mu == nil {
			continue
		}
		// CRT precomputation. With g = n+1 and n ≡ 0 (mod p),
		// g^{p−1} mod p² = 1 + (p−1)·n mod p², so
		// L_p(g^{p−1}) = (p−1)·q mod p and hp is its inverse (hq likewise).
		p2 := new(big.Int).Mul(p, p)
		q2 := new(big.Int).Mul(q, q)
		hp := new(big.Int).ModInverse(
			new(big.Int).Mod(new(big.Int).Mul(pm1, q), p), p)
		hq := new(big.Int).ModInverse(
			new(big.Int).Mod(new(big.Int).Mul(qm1, p), q), q)
		pInvQ := new(big.Int).ModInverse(new(big.Int).Mod(p, q), q)
		if hp == nil || hq == nil || pInvQ == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2, fb: newFixedBase(n, n2)},
			lambda:    lambda,
			mu:        mu,
			p:         p,
			q:         q,
			p2:        p2,
			q2:        q2,
			pm1:       pm1,
			qm1:       qm1,
			hp:        hp,
			hq:        hq,
			pInvQ:     pInvQ,
			mcP2:      newMontCtx(p2),
			mcQ2:      newMontCtx(q2),
			mcN2:      newMontCtx(n2),
		}, nil
	}
}

// Encrypt encrypts m ∈ [0, n) under pk. Negative messages are mapped to
// n − |m| (two's-complement-style), which Decrypt undoes for small values.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	return pk.encrypt(random, m, pk.fb)
}

// encrypt is Encrypt with an explicit fixed-base table (possibly nil), so
// EncryptVector can share one table across slots even on keys without a
// precomputed one.
//
// With a table, the whole operation runs on the table's pooled scratch —
// randomizer walk, g^m, product, and reduction — and only the returned
// ciphertext is freshly allocated (two allocations: box + limbs). Without
// one it falls back to the allocating textbook path.
func (pk *PublicKey) encrypt(random io.Reader, m *big.Int, fb *fixedBase) (*Ciphertext, error) {
	if fb == nil {
		// Textbook path: r uniform in [1, n) with gcd(r, n) = 1
		// (overwhelmingly likely), then a full n-bit exponentiation.
		var r *big.Int
		var err error
		for {
			r, err = rand.Int(random, pk.N)
			if err != nil {
				return nil, err
			}
			if r.Sign() != 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
				break
			}
		}
		rn := new(big.Int).Exp(r, pk.N, pk.N2)
		msg := new(big.Int).Mod(m, pk.N)
		gm := new(big.Int).Mul(msg, pk.N)
		gm.Add(gm, one)
		c := gm.Mul(gm, rn)
		c.Mod(c, pk.N2)
		return &Ciphertext{C: c}, nil
	}
	s := fb.scratch.Get()
	defer fb.scratch.Put(s)
	if err := fb.randomPowerInto(random, s); err != nil {
		return nil, err
	}
	msg := s.msg.Mod(m, pk.N)
	// c = g^m · r^n mod n^2 with g = n+1: g^m = 1 + m·n, which is already
	// below n² (msg ≤ n−1 gives g^m ≤ n² − n + 1), so no reduction is needed
	// before the product.
	gm := s.gm.Mul(msg, pk.N)
	gm.Add(gm, one)
	s.mul.Mul(gm, &s.rn)
	box := &ctBox{}
	s.quo.QuoRem(&s.mul, pk.N2, &box.v)
	box.ct.C = &box.v
	return &box.ct, nil
}

// Decrypt recovers the plaintext. Values above n/2 are returned negative,
// matching Encrypt's handling of negative messages. Keys that carry their
// factorization (from GenerateKey) decrypt via CRT — two half-width
// exponentiations instead of one full-width one; reassembled keys
// (FromSecrets) use the lambda/mu formula. Both compute the same value.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if ct == nil || ct.C == nil || ct.C.Sign() <= 0 || ct.C.Cmp(sk.N2) >= 0 {
		return nil, errors.New("ahe: ciphertext out of range")
	}
	var m *big.Int
	if sk.p != nil {
		m = sk.decryptCRT(ct.C)
	} else {
		var u *big.Int
		if sk.mcN2 != nil {
			u = sk.mcN2.exp(ct.C, sk.lambda)
		} else {
			u = new(big.Int).Exp(ct.C, sk.lambda, sk.N2)
		}
		// L(u) = (u-1)/n
		u.Sub(u, one)
		u.Div(u, sk.N)
		m = u.Mul(u, sk.mu)
		m.Mod(m, sk.N)
	}
	half := new(big.Int).Rsh(sk.N, 1)
	if m.Cmp(half) > 0 {
		m.Sub(m, sk.N)
	}
	return m, nil
}

// decryptCRT computes the plaintext of c mod p and mod q separately and
// recombines: m_p = L_p(c^{p−1} mod p²)·hp mod p with L_p(x) = (x−1)/p, the
// same mod q, then m = m_p + p·((m_q − m_p)·p^{-1} mod q). Exponent and
// modulus are both half-width, which is ~4× cheaper than the lambda/mu
// exponentiation mod n² at 2048-bit keys. The two exponentiations run in
// Montgomery form (montgomery.go) where the platform supports it.
func (sk *PrivateKey) decryptCRT(c *big.Int) *big.Int {
	var up *big.Int
	if sk.mcP2 != nil {
		up = sk.mcP2.exp(c, sk.pm1)
	} else {
		up = new(big.Int).Mod(c, sk.p2)
		up.Exp(up, sk.pm1, sk.p2)
	}
	up.Sub(up, one)
	up.Div(up, sk.p)
	mp := up.Mul(up, sk.hp)
	mp.Mod(mp, sk.p)

	var uq *big.Int
	if sk.mcQ2 != nil {
		uq = sk.mcQ2.exp(c, sk.qm1)
	} else {
		uq = new(big.Int).Mod(c, sk.q2)
		uq.Exp(uq, sk.qm1, sk.q2)
	}
	uq.Sub(uq, one)
	uq.Div(uq, sk.q)
	mq := uq.Mul(uq, sk.hq)
	mq.Mod(mq, sk.q)

	// m ≡ mp (mod p), m ≡ mq (mod q), m ∈ [0, n).
	d := new(big.Int).Sub(mq, mp)
	d.Mod(d, sk.q)
	d.Mul(d, sk.pInvQ)
	d.Mod(d, sk.q)
	d.Mul(d, sk.p)
	return d.Add(d, mp)
}

// Add returns a ciphertext encrypting the sum of the two plaintexts: the ⊞
// operator of Section 2.2.
func (pk *PublicKey) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("ahe: nil ciphertext")
	}
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// AddPlain returns a ciphertext encrypting plaintext(a) + k.
func (pk *PublicKey) AddPlain(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("ahe: nil ciphertext")
	}
	gk := new(big.Int).Mul(new(big.Int).Mod(k, pk.N), pk.N)
	gk.Add(gk, one)
	gk.Mod(gk, pk.N2)
	c := new(big.Int).Mul(a.C, gk)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// MulPlain returns a ciphertext encrypting plaintext(a) · k for public k.
func (pk *PublicKey) MulPlain(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("ahe: nil ciphertext")
	}
	kk := new(big.Int).Mod(k, pk.N)
	c := new(big.Int).Exp(a.C, kk, pk.N2)
	return &Ciphertext{C: c}, nil
}

// minParallelSum is the slice length below which Sum stays sequential: a
// Paillier Add is a single modular multiplication, so tiny sums would be
// dominated by pool overhead.
const minParallelSum = 64

// accPool recycles sumRange's accumulators (and their grown scratch limbs)
// across calls. An accumulator checked out here is re-bound to the calling
// key before use, so the pool is safe to share across keys; a key-size
// change just regrows the limbs once.
var accPool = fixed.Pool[Accumulator]{New: func() *Accumulator { return new(Accumulator) }}

// sumRange folds Add sequentially over a non-empty slice. It runs on a
// pooled Accumulator so the whole range costs two allocations (the returned
// ciphertext box) regardless of length — this is the inner loop of every
// Sum chunk and of the streaming-ingest shard aggregators.
func (pk *PublicKey) sumRange(cts []*Ciphertext) (*Ciphertext, error) {
	if len(cts) == 1 {
		return cts[0], nil
	}
	acc := accPool.Get()
	defer accPool.Put(acc)
	acc.pk = pk
	acc.Reset()
	for _, ct := range cts {
		if err := acc.Add(ct); err != nil {
			return nil, err
		}
	}
	return newCiphertextFrom(&acc.acc), nil
}

// Sum folds Add over a slice of ciphertexts; this is the aggregator's inner
// loop in AHE-sum plans (Figure 5). Large sums are folded in parallel chunks
// (one per worker) and the chunk partials are combined in index order;
// because ciphertext addition is multiplication mod n² — associative and
// commutative — the result is bit-identical to the sequential fold at every
// worker count.
func (pk *PublicKey) Sum(cts []*Ciphertext) (*Ciphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("ahe: empty sum")
	}
	w := parallel.Workers(0)
	if w > 1 && len(cts) >= minParallelSum {
		chunk := (len(cts) + w - 1) / w
		nChunks := (len(cts) + chunk - 1) / chunk
		partials, err := parallel.Map(nil, nChunks, w, func(ci int) (*Ciphertext, error) {
			lo := ci * chunk
			hi := lo + chunk
			if hi > len(cts) {
				hi = len(cts)
			}
			return pk.sumRange(cts[lo:hi])
		})
		if err != nil {
			return nil, err
		}
		return pk.sumRange(partials)
	}
	return pk.sumRange(cts)
}

// lockedReader serializes Read calls so a non-thread-safe randomness source
// can feed a parallel encryption loop.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// parallelSafeReader returns a reader safe for concurrent use: crypto/rand's
// Reader already is; anything else gets a mutex.
func parallelSafeReader(r io.Reader) io.Reader {
	if r == rand.Reader {
		return r
	}
	return &lockedReader{r: r}
}

// EncryptVector one-hot-encodes and encrypts: the returned slice has an
// encryption of 1 at position hot and encryptions of 0 elsewhere. This is
// the device-side input step for categorical queries (Section 5.3). The
// per-position encryptions are independent, so they run on the package's
// worker pool; slot i always holds position i's ciphertext. All slots share
// one fixed-base table for their r^n factors — the key's precomputed table
// when present, otherwise one built here for the call.
func (pk *PublicKey) EncryptVector(random io.Reader, length, hot int) ([]*Ciphertext, error) {
	if hot < 0 || hot >= length {
		return nil, fmt.Errorf("ahe: hot index %d out of [0,%d)", hot, length)
	}
	fb := pk.fb
	if fb == nil {
		fb = newFixedBase(pk.N, pk.N2)
	}
	w := parallel.Workers(0)
	if w > 1 && length > 1 {
		random = parallelSafeReader(random)
	}
	return parallel.Map(nil, length, w, func(i int) (*Ciphertext, error) {
		m := zero
		if i == hot {
			m = one
		}
		return pk.encrypt(random, m, fb)
	})
}

// Lambda exposes a copy of the decryption exponent for threshold-style
// handoff to a committee (the runtime secret-shares it via internal/shamir,
// mirroring how the real system would share a BGV key; see DESIGN.md).
func (sk *PrivateKey) Lambda() *big.Int { return new(big.Int).Set(sk.lambda) }

// Mu exposes a copy of the post-processing inverse, shared alongside Lambda.
func (sk *PrivateKey) Mu() *big.Int { return new(big.Int).Set(sk.mu) }

// FromSecrets reassembles a private key from redistributed secrets, used by
// decryption committees after VSR hand-off. The key has no factorization, so
// Decrypt takes the lambda/mu path — in Montgomery form mod n² where the
// platform supports it.
func FromSecrets(pk *PublicKey, lambda, mu *big.Int) *PrivateKey {
	return &PrivateKey{
		PublicKey: *pk,
		lambda:    new(big.Int).Set(lambda),
		mu:        new(big.Int).Set(mu),
		mcN2:      newMontCtx(pk.N2),
	}
}
