package ahe

// Fixed-base acceleration for the r^n mod n² randomizer factor of Paillier
// encryption.
//
// The textbook scheme draws r uniform in Z_n* and pays a full |n|-bit
// exponentiation per encryption. Following the Damgård–Jurik–Nielsen
// shortened-exponent variant, we instead fix a base gn = h^n mod n² (h a
// canonical unit derived from n) and draw the randomizer as gn^x for a
// random 512-bit exponent x. The randomizer is still an n-th power, so
// decryption, the homomorphic operations, and the wire format are all
// untouched; semantic security rests on the standard subgroup variant of
// the decisional composite residuosity assumption (see docs/KERNELS.md).
//
// Because the base is fixed, the exponentiation uses a comb of precomputed
// window powers — table[i][j−1] = gn^(j·16^i) — so one encryption costs at
// most 128 modular multiplications and no squarings, and the table is shared
// across every encryption under the key (EncryptVector's per-slot
// encryptions in particular).

import (
	"crypto/sha256"
	"io"
	"math/big"
)

const (
	fbWindowBits = 4
	fbExpBytes   = 64 // 512-bit randomizer exponents
	fbWindows    = fbExpBytes * 8 / fbWindowBits
)

// fixedBase is immutable after newFixedBase and safe for concurrent use.
type fixedBase struct {
	n2    *big.Int
	table [][]*big.Int // table[i][j-1] = gn^(j·16^i) mod n²
}

// deriveH returns a canonical unit mod n, derived deterministically from the
// modulus by hashing (so a deserialized key rebuilds the same base). A value
// sharing a factor with n would reveal the factorization, so non-units are
// essentially impossible; the bump loop handles them anyway.
func deriveH(n *big.Int) *big.Int {
	nb := n.Bytes()
	stream := make([]byte, 0, len(nb)+sha256.Size)
	buf := make([]byte, len(nb)+1)
	copy(buf, nb)
	for ctr := 0; len(stream) < len(nb); ctr++ {
		buf[len(nb)] = byte(ctr)
		h := sha256.Sum256(buf)
		stream = append(stream, h[:]...)
	}
	hv := new(big.Int).SetBytes(stream[:len(nb)])
	hv.Mod(hv, n)
	gcd := new(big.Int)
	for {
		if hv.Sign() != 0 && gcd.GCD(nil, nil, hv, n).Cmp(one) == 0 {
			return hv
		}
		hv.Add(hv, one)
		if hv.Cmp(n) >= 0 {
			hv.SetInt64(2)
		}
	}
}

// newFixedBase precomputes the window-power table for gn = h^n mod n².
// Each window's powers are fifteen multiplications by the previous entry,
// and the last entry (gn^(15·16^i)) times the window base is exactly the
// next window's base, so no squarings are needed anywhere.
func newFixedBase(n, n2 *big.Int) *fixedBase {
	base := new(big.Int).Exp(deriveH(n), n, n2)
	fb := &fixedBase{n2: n2, table: make([][]*big.Int, fbWindows)}
	g := base
	for i := 0; i < fbWindows; i++ {
		row := make([]*big.Int, (1<<fbWindowBits)-1)
		cur := g
		for j := range row {
			row[j] = cur
			next := new(big.Int).Mul(cur, g)
			cur = next.Mod(next, n2)
		}
		fb.table[i] = row
		g = cur // g^16: the next window's base
	}
	return fb
}

// randomPower draws a fresh randomizer gn^x mod n² with x a uniform 512-bit
// exponent read from random: one table-row multiply per nonzero 4-bit digit
// of x, ~120 modular multiplications in expectation.
func (fb *fixedBase) randomPower(random io.Reader) (*big.Int, error) {
	var buf [fbExpBytes]byte
	if _, err := io.ReadFull(random, buf[:]); err != nil {
		return nil, err
	}
	acc := big.NewInt(1)
	for i := 0; i < fbWindows; i++ {
		d := buf[i>>1]
		if i&1 == 0 {
			d &= 0x0f
		} else {
			d >>= 4
		}
		if d != 0 {
			acc.Mul(acc, fb.table[i][d-1])
			acc.Mod(acc, fb.n2)
		}
	}
	return acc, nil
}
