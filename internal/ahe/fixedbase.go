package ahe

// Fixed-base acceleration for the r^n mod n² randomizer factor of Paillier
// encryption.
//
// The textbook scheme draws r uniform in Z_n* and pays a full |n|-bit
// exponentiation per encryption. Following the Damgård–Jurik–Nielsen
// shortened-exponent variant, we instead fix a base gn = h^n mod n² (h a
// canonical unit derived from n) and draw the randomizer as gn^x for a
// random 512-bit exponent x. The randomizer is still an n-th power, so
// decryption, the homomorphic operations, and the wire format are all
// untouched; semantic security rests on the standard subgroup variant of
// the decisional composite residuosity assumption (see docs/KERNELS.md).
//
// Because the base is fixed, the exponentiation uses a comb of precomputed
// window powers — entry (i, j) = gn^(j·16^i) — so one encryption costs at
// most 128 modular multiplications and no squarings, and the table is shared
// across every encryption under the key (EncryptVector's per-slot
// encryptions in particular). On 64-bit platforms the table is stored in
// Montgomery form and the ~120-multiplication walk runs as allocation-free
// CIOS products on pooled limb scratch — no division anywhere in the chain;
// elsewhere it falls back to the original math/big Mul+Mod walk.

import (
	"crypto/sha256"
	"io"
	"math/big"

	"arboretum/internal/fixed"
)

const (
	fbWindowBits = 4
	fbExpBytes   = 64 // 512-bit randomizer exponents
	fbWindows    = fbExpBytes * 8 / fbWindowBits
	fbRowLen     = (1 << fbWindowBits) - 1 // nonzero digit values per window
)

// fixedBase is immutable after newFixedBase and safe for concurrent use: the
// tables are read-only and the mutable per-call state lives in a pool of
// scratch structs.
type fixedBase struct {
	n2 *big.Int

	// Montgomery fast path (mc non-nil): one flat limb vector holding every
	// window power in Montgomery form; entry (i, j−1) for nonzero digit j of
	// window i starts at ((i·fbRowLen)+j−1)·mc.k.
	mc     *montCtx
	mtable []uint64

	// math/big fallback (mc nil): table[i][j-1] = gn^(j·16^i) mod n².
	table [][]*big.Int

	// scratch pools the per-encryption working state: the Montgomery
	// accumulator and CIOS vector, the randomizer-exponent bytes, and the
	// big.Int temporaries encrypt folds its product in.
	scratch fixed.Pool[fbScratch]
}

// fbScratch is one encryption's working state. Nothing in it survives into a
// returned ciphertext: encrypt copies its final value into the result box.
type fbScratch struct {
	acc []uint64 // Montgomery accumulator, k limbs
	t   []uint64 // CIOS scratch, k+2 limbs
	exp [fbExpBytes]byte
	msg big.Int // m mod n
	gm  big.Int // 1 + msg·n
	rn  big.Int // randomizer r^n mod n²
	mul big.Int // double-width product gm·rn
	quo big.Int // quotient scratch for the final reduction
}

// deriveH returns a canonical unit mod n, derived deterministically from the
// modulus by hashing (so a deserialized key rebuilds the same base). A value
// sharing a factor with n would reveal the factorization, so non-units are
// essentially impossible; the bump loop handles them anyway.
func deriveH(n *big.Int) *big.Int {
	nb := n.Bytes()
	stream := make([]byte, 0, len(nb)+sha256.Size)
	buf := make([]byte, len(nb)+1)
	copy(buf, nb)
	for ctr := 0; len(stream) < len(nb); ctr++ {
		buf[len(nb)] = byte(ctr)
		h := sha256.Sum256(buf)
		stream = append(stream, h[:]...)
	}
	hv := new(big.Int).SetBytes(stream[:len(nb)])
	hv.Mod(hv, n)
	gcd := new(big.Int)
	for {
		if hv.Sign() != 0 && gcd.GCD(nil, nil, hv, n).Cmp(one) == 0 {
			return hv
		}
		hv.Add(hv, one)
		if hv.Cmp(n) >= 0 {
			hv.SetInt64(2)
		}
	}
}

// newFixedBase precomputes the window-power table for gn = h^n mod n².
// Each window's powers are fifteen multiplications by the previous entry,
// and the last entry (gn^(15·16^i)) times the window base is exactly the
// next window's base, so no squarings are needed anywhere. The powers are
// computed once in plain form and then converted to Montgomery form when the
// platform supports the fast path.
func newFixedBase(n, n2 *big.Int) *fixedBase {
	fb := newFixedBasePlain(n, n2)
	if mc := newMontCtx(n2); mc != nil {
		fb.mc = mc
		fb.mtable = make([]uint64, fbWindows*fbRowLen*mc.k)
		t := make([]uint64, mc.scratchLen())
		for i := 0; i < fbWindows; i++ {
			for j := 0; j < fbRowLen; j++ {
				e := fb.entry(i, j)
				wordsTo(e, fb.table[i][j])
				montMul(e, e, mc.r2, mc, t) // to Montgomery form
			}
		}
		fb.table = nil // the Montgomery table supersedes the plain one
	}
	k := 1
	if fb.mc != nil {
		k = fb.mc.k
	}
	fb.scratch.New = func() *fbScratch {
		return &fbScratch{acc: make([]uint64, k), t: make([]uint64, k+2)}
	}
	return fb
}

// newFixedBasePlain builds the math/big window-power table only — the form
// every platform can run. Tests use it directly to pin the fallback walk
// against the Montgomery one.
func newFixedBasePlain(n, n2 *big.Int) *fixedBase {
	base := new(big.Int).Exp(deriveH(n), n, n2)
	fb := &fixedBase{n2: n2, table: make([][]*big.Int, fbWindows)}
	g := base
	for i := 0; i < fbWindows; i++ {
		row := make([]*big.Int, fbRowLen)
		cur := g
		for j := range row {
			row[j] = cur
			next := new(big.Int).Mul(cur, g)
			cur = next.Mod(next, n2)
		}
		fb.table[i] = row
		g = cur // g^16: the next window's base
	}
	fb.scratch.New = func() *fbScratch {
		return &fbScratch{acc: make([]uint64, 1), t: make([]uint64, 3)}
	}
	return fb
}

// entry returns the Montgomery-form limb slice for nonzero digit j+1 of
// window i.
func (fb *fixedBase) entry(i, j int) []uint64 {
	k := fb.mc.k
	off := (i*fbRowLen + j) * k
	return fb.mtable[off : off+k]
}

// randomPower draws a fresh randomizer gn^x mod n² with x a uniform 512-bit
// exponent read from random: one table-entry multiply per nonzero 4-bit
// digit of x, ~120 modular multiplications in expectation.
func (fb *fixedBase) randomPower(random io.Reader) (*big.Int, error) {
	s := fb.scratch.Get()
	defer fb.scratch.Put(s)
	if err := fb.randomPowerInto(random, s); err != nil {
		return nil, err
	}
	return new(big.Int).Set(&s.rn), nil
}

// randomPowerInto draws the randomizer into s.rn using only s's scratch:
// the allocation-free core of randomPower, shared with encrypt.
func (fb *fixedBase) randomPowerInto(random io.Reader, s *fbScratch) error {
	if _, err := io.ReadFull(random, s.exp[:]); err != nil {
		return err
	}
	if fb.mc == nil {
		// math/big fallback: plain Mul+Mod walk over the plain table.
		acc := s.rn.SetInt64(1)
		for i := 0; i < fbWindows; i++ {
			d := fb.expDigit(s, i)
			if d != 0 {
				s.mul.Mul(acc, fb.table[i][d-1])
				s.quo.QuoRem(&s.mul, fb.n2, acc)
			}
		}
		return nil
	}
	mc := fb.mc
	copy(s.acc, mc.rone) // Montgomery 1
	for i := 0; i < fbWindows; i++ {
		d := fb.expDigit(s, i)
		if d != 0 {
			montMul(s.acc, s.acc, fb.entry(i, int(d-1)), mc, s.t)
		}
	}
	montMul(s.acc, s.acc, mc.oneW, mc, s.t) // out of Montgomery form
	setFromWords(&s.rn, s.acc)
	return nil
}

// expDigit extracts 4-bit window i of the drawn exponent.
func (fb *fixedBase) expDigit(s *fbScratch, i int) byte {
	d := s.exp[i>>1]
	if i&1 == 0 {
		return d & 0x0f
	}
	return d >> 4
}
