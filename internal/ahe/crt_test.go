package ahe

// Equivalence properties for the accelerated decryption and encryption
// paths: CRT decryption (keys carrying their factorization) must agree with
// the lambda/mu formula (keys reassembled via FromSecrets) on every
// ciphertext, and fixed-base encryptions must decrypt under both.

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// TestDecryptCRTMatchesLambdaMu decrypts the same ciphertexts with the CRT
// path and with a FromSecrets-reassembled key (lambda/mu path) and requires
// identical plaintexts, including negatives.
func TestDecryptCRTMatchesLambdaMu(t *testing.T) {
	sk := testKeyPair(t)
	if sk.p == nil {
		t.Fatal("generated key lost its factorization; CRT path untested")
	}
	re := FromSecrets(&sk.PublicKey, sk.Lambda(), sk.Mu())
	if re.p != nil {
		t.Fatal("reassembled key claims a factorization it does not have")
	}
	msgs := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(-1),
		big.NewInt(1 << 40), big.NewInt(-(1 << 40)), big.NewInt(123456789),
	}
	// A few random full-range messages as well.
	for i := 0; i < 4; i++ {
		m, err := rand.Int(rand.Reader, sk.N)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m)
	}
	for _, m := range msgs {
		ct, err := sk.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		crt, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		lm, err := re.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if crt.Cmp(lm) != 0 {
			t.Fatalf("Decrypt mismatch for m=%v: CRT %v, lambda/mu %v", m, crt, lm)
		}
	}
}

// TestQuickDecryptEquivalence is the randomized version over signed small
// messages: CRT and lambda/mu decryption agree on homomorphic sums too.
func TestQuickDecryptEquivalence(t *testing.T) {
	sk := testKeyPair(t)
	re := FromSecrets(&sk.PublicKey, sk.Lambda(), sk.Mu())
	f := func(a, b int32) bool {
		ca, err1 := sk.Encrypt(rand.Reader, big.NewInt(int64(a)))
		cb, err2 := sk.Encrypt(rand.Reader, big.NewInt(int64(b)))
		if err1 != nil || err2 != nil {
			return false
		}
		sum, err := sk.Add(ca, cb)
		if err != nil {
			return false
		}
		x, err1 := sk.Decrypt(sum)
		y, err2 := re.Decrypt(sum)
		return err1 == nil && err2 == nil && x.Cmp(y) == 0 &&
			x.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestFixedBaseEncryptMatchesTextbook checks that fixed-base encryptions
// (key table present) and textbook encryptions (no table) decrypt to the
// same plaintexts under the same key — both randomizers are n-th powers, so
// the ciphertext spaces coincide.
func TestFixedBaseEncryptMatchesTextbook(t *testing.T) {
	sk := testKeyPair(t)
	if sk.fb == nil {
		t.Fatal("generated key has no fixed-base table")
	}
	bare := PublicKey{N: sk.N, N2: sk.N2} // no table: textbook path
	for _, m := range []int64{0, 1, -7, 424242} {
		ctFB, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		ctTB, err := bare.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		gotFB, err := sk.Decrypt(ctFB)
		if err != nil {
			t.Fatal(err)
		}
		gotTB, err := sk.Decrypt(ctTB)
		if err != nil {
			t.Fatal(err)
		}
		if gotFB.Int64() != m || gotTB.Int64() != m {
			t.Fatalf("m=%d: fixed-base %v, textbook %v", m, gotFB, gotTB)
		}
	}
	// The two paths must still be homomorphically compatible.
	a, _ := sk.Encrypt(rand.Reader, big.NewInt(100))
	b, _ := bare.Encrypt(rand.Reader, big.NewInt(23))
	sum, err := sk.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 123 {
		t.Fatalf("mixed-path sum decrypted to %v", got)
	}
}

// TestEncryptVectorSharedTable exercises the table-per-call path: a key
// without a precomputed table must still one-hot encrypt correctly.
func TestEncryptVectorSharedTable(t *testing.T) {
	sk := testKeyPair(t)
	bare := PublicKey{N: sk.N, N2: sk.N2}
	vec, err := bare.EncryptVector(rand.Reader, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range vec {
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if i == 1 {
			want = 1
		}
		if got.Int64() != want {
			t.Errorf("slot %d = %v, want %d", i, got, want)
		}
	}
}
