package sortition

import (
	"fmt"
	"math"
	"testing"
)

func makeTickets(n int, block []byte, queryID uint64) []Ticket {
	ts := make([]Ticket, n)
	for i := range ts {
		key := []byte(fmt.Sprintf("device-key-%d", i))
		ts[i] = MakeTicket(key, i, block, queryID)
	}
	return ts
}

func TestTicketDeterminism(t *testing.T) {
	a := MakeTicket([]byte("k"), 1, []byte("block"), 7)
	b := MakeTicket([]byte("k"), 1, []byte("block"), 7)
	if a.Hash != b.Hash {
		t.Fatal("same inputs produced different tickets")
	}
	c := MakeTicket([]byte("k"), 1, []byte("block"), 8)
	if a.Hash == c.Hash {
		t.Fatal("different query IDs produced identical tickets")
	}
	d := MakeTicket([]byte("k2"), 1, []byte("block"), 7)
	if a.Hash == d.Hash {
		t.Fatal("different keys produced identical tickets")
	}
}

func TestSelectFormsDisjointCommittees(t *testing.T) {
	ts := makeTickets(100, []byte("b0"), 1)
	cs, err := Select(ts, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 4 {
		t.Fatalf("got %d committees", len(cs))
	}
	seen := map[int]bool{}
	for _, c := range cs {
		if len(c) != 10 {
			t.Fatalf("committee size %d", len(c))
		}
		for _, d := range c {
			if seen[d] {
				t.Fatalf("device %d on two committees", d)
			}
			seen[d] = true
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	ts := makeTickets(50, []byte("b0"), 1)
	a, _ := Select(ts, 2, 5)
	b, _ := Select(ts, 2, 5)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("selection not deterministic")
			}
		}
	}
}

func TestSelectChangesWithBlock(t *testing.T) {
	a, _ := Select(makeTickets(200, []byte("b0"), 1), 1, 10)
	b, _ := Select(makeTickets(200, []byte("b1"), 1), 1, 10)
	same := true
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different blocks selected identical committees")
	}
}

func TestSelectErrors(t *testing.T) {
	ts := makeTickets(5, []byte("b"), 1)
	if _, err := Select(ts, 2, 3); err == nil {
		t.Error("insufficient tickets accepted")
	}
	if _, err := Select(ts, 0, 3); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := Select(ts, 1, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestPerRoundFailure(t *testing.T) {
	sp := DefaultSizeParams
	p1 := sp.PerRoundFailure()
	// p = 1 − (1 − p1)^R must recover P.
	back := -math.Expm1(float64(sp.R) * math.Log1p(-p1))
	if math.Abs(back-sp.P)/sp.P > 1e-6 {
		t.Errorf("round-trip p = %g, want %g", back, sp.P)
	}
	one := SizeParams{F: 0.03, G: 0.15, P: 1e-8, R: 1}
	if one.PerRoundFailure() != 1e-8 {
		t.Error("R=1 should return P unchanged")
	}
}

// The paper reports committee sizes of about 40 members at the default
// parameters (f = 3%, g = 15%, 10^-8 over 1,000 queries).
func TestMinCommitteeSizePaperSetting(t *testing.T) {
	m, err := MinCommitteeSize(1, DefaultSizeParams)
	if err != nil {
		t.Fatal(err)
	}
	if m < 25 || m > 60 {
		t.Errorf("MinCommitteeSize(c=1) = %d, paper reports ~40", m)
	}
	// topK uses ~115k committees; size grows but stays manageable.
	big, err := MinCommitteeSize(115334, DefaultSizeParams)
	if err != nil {
		t.Fatal(err)
	}
	if big <= m {
		t.Errorf("more committees should need larger m: %d <= %d", big, m)
	}
	if big > 150 {
		t.Errorf("m(c=115334) = %d, unreasonably large", big)
	}
}

// Monotonicity: m is non-decreasing in the committee count and in f.
func TestMinCommitteeSizeMonotonic(t *testing.T) {
	prev := 0
	for _, c := range []int{1, 10, 100, 10000, 1000000} {
		m, err := MinCommitteeSize(c, DefaultSizeParams)
		if err != nil {
			t.Fatal(err)
		}
		if m < prev {
			t.Errorf("m decreased from %d to %d at c=%d", prev, m, c)
		}
		prev = m
	}
	spLow := DefaultSizeParams
	spLow.F = 0.01
	mLow, _ := MinCommitteeSize(100, spLow)
	mHigh, _ := MinCommitteeSize(100, DefaultSizeParams)
	if mLow > mHigh {
		t.Errorf("smaller f should not need larger committees: %d > %d", mLow, mHigh)
	}
}

// The honest-majority bound must actually hold at the returned size: check
// the failure probability directly.
func TestMinCommitteeSizeSatisfiesBound(t *testing.T) {
	sp := DefaultSizeParams
	c := 1000
	m, err := MinCommitteeSize(c, sp)
	if err != nil {
		t.Fatal(err)
	}
	logFail := math.Log(float64(c)) + committeeFailureLog(m, sp.F, sp.G)
	if logFail > math.Log(sp.PerRoundFailure()) {
		t.Errorf("returned m=%d does not satisfy the bound", m)
	}
	// m−1 must NOT satisfy it (minimality).
	logFailSmaller := math.Log(float64(c)) + committeeFailureLog(m-1, sp.F, sp.G)
	if logFailSmaller <= math.Log(sp.PerRoundFailure()) {
		t.Errorf("m−1=%d also satisfies the bound; m not minimal", m-1)
	}
}

func TestMinCommitteeSizeErrors(t *testing.T) {
	if _, err := MinCommitteeSize(0, DefaultSizeParams); err == nil {
		t.Error("c=0 accepted")
	}
	bad := DefaultSizeParams
	bad.F = 0.6
	if _, err := MinCommitteeSize(1, bad); err == nil {
		t.Error("f=0.6 accepted")
	}
	tight := SizeParams{F: 0.49, G: 0.9, P: 1e-12, R: 1000, Max: 10}
	if _, err := MinCommitteeSize(1000, tight); err == nil {
		t.Error("unsatisfiable params accepted")
	}
}

func TestServingFraction(t *testing.T) {
	// topK at N=1e9: 1 + 328 + 115334 committees of ~42 → ~0.49%.
	f := ServingFraction(1+328+115334, 42, 1_000_000_000)
	if f < 0.004 || f > 0.006 {
		t.Errorf("topK serving fraction = %g, paper reports ~0.0049", f)
	}
	if ServingFraction(1, 1, 0) != 0 {
		t.Error("N=0 should give 0")
	}
}

func TestNextBlock(t *testing.T) {
	a := make([]byte, 32)
	b := make([]byte, 32)
	a[0], b[0] = 0xf0, 0x0f
	out, err := NextBlock([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xff {
		t.Errorf("XOR wrong: %x", out[0])
	}
	if _, err := NextBlock(nil); err == nil {
		t.Error("empty contributions accepted")
	}
	if _, err := NextBlock([][]byte{{1, 2}}); err == nil {
		t.Error("short contribution accepted")
	}
}

func BenchmarkMinCommitteeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MinCommitteeSize(100000, DefaultSizeParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect100k(b *testing.B) {
	ts := makeTickets(100000, []byte("b0"), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Select(ts, 10, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// Selection must be (approximately) uniform across devices: over many query
// rounds, every device's selection frequency stays near the expectation.
func TestSelectionUniformity(t *testing.T) {
	const (
		devices = 120
		m       = 6
		rounds  = 400
	)
	keys := make([][]byte, devices)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("uniformity-key-%d", i))
	}
	counts := make([]int, devices)
	for r := 0; r < rounds; r++ {
		block := []byte(fmt.Sprintf("block-%d", r))
		ts := make([]Ticket, devices)
		for i := range ts {
			ts[i] = MakeTicket(keys[i], i, block, uint64(r))
		}
		cs, err := Select(ts, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range cs[0] {
			counts[d]++
		}
	}
	// Expected selections per device: rounds·m/devices = 20. With 400
	// Bernoulli-ish trials the count should stay within a generous band.
	want := float64(rounds*m) / devices
	for d, c := range counts {
		if float64(c) < want/4 || float64(c) > want*4 {
			t.Errorf("device %d selected %d times, want ~%.0f", d, c, want)
		}
	}
}

// A device cannot predict or bias its ticket without the secret block:
// changing one block bit reshuffles the committee completely.
func TestBlockBitFlipsReshuffle(t *testing.T) {
	const devices = 300
	block := make([]byte, 32)
	flipped := append([]byte(nil), block...)
	flipped[0] ^= 1
	tsA := make([]Ticket, devices)
	tsB := make([]Ticket, devices)
	for i := 0; i < devices; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		tsA[i] = MakeTicket(key, i, block, 1)
		tsB[i] = MakeTicket(key, i, flipped, 1)
	}
	a, _ := Select(tsA, 1, 20)
	b, _ := Select(tsB, 1, 20)
	inA := map[int]bool{}
	for _, d := range a[0] {
		inA[d] = true
	}
	overlap := 0
	for _, d := range b[0] {
		if inA[d] {
			overlap++
		}
	}
	// Expected overlap for random 20-of-300 sets ≈ 20·20/300 ≈ 1.3.
	if overlap > 8 {
		t.Errorf("committee overlap after a bit flip = %d/20, want near random", overlap)
	}
}
