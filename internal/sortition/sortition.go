// Package sortition implements Arboretum's committee selection (Section 5.1),
// generalized from Honeycrisp: every registered device deterministically
// signs the current random block, hashes the signature, and the c·m devices
// with the lowest hashes form the committees — the device with the x-th
// lowest hash joins committee ⌊x/m⌋, so each device serves on at most one
// committee. The package also provides the minimum-committee-size solver the
// planner calls before scoring a candidate plan.
package sortition

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"arboretum/internal/hashing"
)

// Ticket is a device's sortition entry: the hash of its deterministic
// signature over (block, queryID, 0). A deployment uses deterministic RSA;
// the simulation uses an HMAC keyed by the device's secret, which has the
// same unforgeability-and-determinism contract (see DESIGN.md).
type Ticket struct {
	Device int
	Hash   [sha256.Size]byte
}

// MakeTicket computes the device's ticket for a query round.
func MakeTicket(deviceKey []byte, device int, block []byte, queryID uint64) Ticket {
	mac := hmac.New(sha256.New, deviceKey)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], queryID)
	// Trailing 0 matches the (B_i, i, 0) message of Section 5.1.
	hashing.Write(mac, block, buf[:])
	var t Ticket
	copy(t.Hash[:], mac.Sum(nil))
	t.Device = device
	return t
}

// Committee is an ordered list of device indices.
type Committee []int

// Equal reports whether two committees have the same members in the same
// order (sortition output is ordered, so order-sensitive equality is the
// identity test the runtime needs when matching a committee against the
// current key holder).
func (c Committee) Equal(o Committee) bool {
	if len(c) != len(o) {
		return false
	}
	for i, id := range c {
		if id != o[i] {
			return false
		}
	}
	return true
}

// Select forms c committees of m members each from the tickets. It returns
// an error if there are fewer than c·m tickets.
func Select(tickets []Ticket, c, m int) ([]Committee, error) {
	if c <= 0 || m <= 0 {
		return nil, fmt.Errorf("sortition: invalid c=%d m=%d", c, m)
	}
	need := c * m
	if len(tickets) < need {
		return nil, fmt.Errorf("sortition: need %d tickets, have %d", need, len(tickets))
	}
	sorted := append([]Ticket(nil), tickets...)
	sort.Slice(sorted, func(i, j int) bool {
		for k := range sorted[i].Hash {
			if sorted[i].Hash[k] != sorted[j].Hash[k] {
				return sorted[i].Hash[k] < sorted[j].Hash[k]
			}
		}
		return sorted[i].Device < sorted[j].Device
	})
	committees := make([]Committee, c)
	for x := 0; x < need; x++ {
		ci := x / m
		committees[ci] = append(committees[ci], sorted[x].Device)
	}
	return committees, nil
}

// SizeParams configures the committee-size computation.
type SizeParams struct {
	F   float64 // fraction of malicious participants (e.g. 0.03)
	G   float64 // tolerated offline fraction per committee (e.g. 0.15)
	P   float64 // total privacy-failure probability over the deployment's life
	R   int     // expected number of rounds (queries)
	Max int     // search cap on m (default 2048)
}

// DefaultSizeParams matches the paper's evaluation setup: f = 3%, g = 15%,
// p = 10^-8 over 1,000 queries.
var DefaultSizeParams = SizeParams{F: 0.03, G: 0.15, P: 1e-8, R: 1000, Max: 2048}

// PerRoundFailure converts the lifetime failure bound p over R rounds to the
// per-round bound p1 with p = 1 − (1 − p1)^R.
func (sp SizeParams) PerRoundFailure() float64 {
	if sp.R <= 1 {
		return sp.P
	}
	return -math.Expm1(math.Log1p(-sp.P) / float64(sp.R))
}

// committeeFailureLog returns log of the probability that a single
// m-member committee lacks an honest majority among its (1−g)·m members that
// remain online, assuming malicious members never go offline (Section 5.1):
// P[fail] = P[Binomial(m, f) > ⌊(1−g)·m/2⌋... specifically the committee
// fails if the number of malicious members i exceeds the honest-majority
// margin, i.e. survives only when i ≤ ⌊(1−g)·m/2⌋.
func committeeFailureLog(m int, f, g float64) float64 {
	keep := int(math.Floor((1 - g) * float64(m) / 2))
	// log P[ok] = log Σ_{i=0..keep} C(m,i) f^i (1-f)^(m-i), in log space.
	logOK := math.Inf(-1)
	lf, l1f := math.Log(f), math.Log1p(-f)
	for i := 0; i <= keep && i <= m; i++ {
		term := logChoose(m, i) + float64(i)*lf + float64(m-i)*l1f
		logOK = logAdd(logOK, term)
	}
	if logOK >= 0 {
		return math.Inf(-1) // P[ok] = 1 ⇒ no failure
	}
	// P[fail one committee] = 1 − P[ok]
	return math.Log(-math.Expm1(logOK))
}

// MinCommitteeSize returns the smallest committee size m such that, with c
// committees, the probability that any committee lacks an honest majority is
// at most the per-round bound: 1 − (P[one ok])^c ≤ p1. The paper reports
// sizes of about 40 at the default parameters, growing slowly with c.
func MinCommitteeSize(c int, sp SizeParams) (int, error) {
	if c <= 0 {
		return 0, errors.New("sortition: committee count must be positive")
	}
	if sp.F <= 0 || sp.F >= 0.5 || sp.G < 0 || sp.G >= 1 {
		return 0, fmt.Errorf("sortition: invalid f=%g g=%g", sp.F, sp.G)
	}
	p1 := sp.PerRoundFailure()
	maxM := sp.Max
	if maxM == 0 {
		maxM = 2048
	}
	for m := 3; m <= maxM; m++ {
		logFail1 := committeeFailureLog(m, sp.F, sp.G)
		// P[any of c committees fails] ≤ c · P[one fails] (union bound,
		// tight at these probabilities); compare in log space.
		logFailAll := math.Log(float64(c)) + logFail1
		if logFailAll <= math.Log(p1) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sortition: no committee size ≤ %d achieves p1=%g with c=%d", maxM, p1, c)
}

// ServingFraction returns the fraction of N devices that serve on any
// committee for a plan with the given committee count and size (the paper
// reports 0.00022%–0.49% across the evaluation queries).
func ServingFraction(c, m int, n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(c) * float64(m) / float64(n)
}

// logChoose returns log C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// logAdd returns log(e^a + e^b) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// NextBlock derives the next round's random block B_{i+1} from the XOR of
// the committee members' random contributions (Section 5.2).
func NextBlock(contributions [][]byte) ([]byte, error) {
	if len(contributions) == 0 {
		return nil, errors.New("sortition: no contributions")
	}
	out := make([]byte, sha256.Size)
	for _, c := range contributions {
		if len(c) != sha256.Size {
			return nil, fmt.Errorf("sortition: contribution must be %d bytes", sha256.Size)
		}
		for i := range out {
			out[i] ^= c[i]
		}
	}
	return out, nil
}
