// Command arblint is Arboretum's invariant checker: a multichecker in the
// style of golang.org/x/tools/go/analysis (built on the standard library
// only) that machine-checks the crypto, privacy, and concurrency invariants
// the compiler cannot see. It is a tier-1 gate: scripts/check.sh runs
//
//	go run ./tools/arblint ./...
//
// and fails the build on any finding. docs/ANALYSIS.md catalogues the
// analyzers, the package-policy table behind them, the interprocedural
// dataflow engine under the taint analyzers, and the //arblint:ignore
// suppression directive (reason mandatory).
//
// Usage:
//
//	arblint [-list] [-json] [-disable name,...] [packages...]
//
// -json prints the findings plus per-analyzer timing stats as a single JSON
// object on stdout (CI uploads it as an artifact); -list after a run prints
// each analyzer's wall time. Exit status: 0 clean, 1 findings, 2 usage or
// load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/arblint"
	"arboretum/tools/arblint/internal/checkers"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers (with wall time, after a run) and exit")
	jsonFlag := flag.Bool("json", false, "print findings and per-analyzer stats as JSON on stdout")
	disableFlag := flag.String("disable", "", "comma-separated analyzer names to skip")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: arblint [-list] [-json] [-disable name,...] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := checkers.All()
	if *listFlag && flag.NArg() == 0 {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	disabled := map[string]bool{}
	if *disableFlag != "" {
		known := map[string]bool{}
		for _, a := range all {
			known[a.Name] = true
		}
		for _, name := range strings.Split(*disableFlag, ",") {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "arblint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			disabled[name] = true
		}
	}
	var run []*analysis.Analyzer
	for _, a := range all {
		if !disabled[a.Name] {
			run = append(run, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, stats, err := arblint.RunStats(".", patterns, run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Position.Filename != diags[j].Position.Filename {
			return diags[i].Position.Filename < diags[j].Position.Filename
		}
		return diags[i].Position.Line < diags[j].Position.Line
	})

	switch {
	case *jsonFlag:
		out := struct {
			Findings []arblint.Finding `json:"findings"`
			Stats    []arblint.Stat    `json:"stats"`
		}{Findings: diags, Stats: stats}
		if out.Findings == nil {
			out.Findings = []arblint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
			os.Exit(2)
		}
	case *listFlag:
		for _, st := range stats {
			fmt.Printf("%-14s %4d pkg %12s\n", st.Analyzer, st.Packages, st.Duration.Round(1000))
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arblint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
