// Command arblint is Arboretum's invariant checker: a multichecker in the
// style of golang.org/x/tools/go/analysis (built on the standard library
// only) that machine-checks the crypto, privacy, and concurrency invariants
// the compiler cannot see. It is a tier-1 gate: scripts/check.sh runs
//
//	go run ./tools/arblint ./...
//
// and fails the build on any finding. docs/ANALYSIS.md catalogues the
// analyzers, the package-policy table behind them, and the
// //arblint:ignore suppression directive (reason mandatory).
//
// Usage:
//
//	arblint [-list] [-disable name,...] [packages...]
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/arblint"
	"arboretum/tools/arblint/internal/checkers"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	disableFlag := flag.String("disable", "", "comma-separated analyzer names to skip")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: arblint [-list] [-disable name,...] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := checkers.All()
	if *listFlag {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	disabled := map[string]bool{}
	if *disableFlag != "" {
		known := map[string]bool{}
		for _, a := range all {
			known[a.Name] = true
		}
		for _, name := range strings.Split(*disableFlag, ",") {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "arblint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			disabled[name] = true
		}
	}
	var run []*analysis.Analyzer
	for _, a := range all {
		if !disabled[a.Name] {
			run = append(run, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := arblint.Run(".", patterns, run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Position.Filename != diags[j].Position.Filename {
			return diags[i].Position.Filename < diags[j].Position.Filename
		}
		return diags[i].Position.Line < diags[j].Position.Line
	})
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arblint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
