package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arboretum/tools/arblint/internal/arblint"
	"arboretum/tools/arblint/internal/checkers"
)

// TestRepoCleanAtHead is the tier-1 regression: every analyzer over every
// package in the repository, zero findings. A change that introduces a
// violation (or removes an annotation without fixing the code) fails here
// before it fails in scripts/check.sh.
func TestRepoCleanAtHead(t *testing.T) {
	findings, err := arblint.Run("../..", []string{"./..."}, checkers.All())
	if err != nil {
		t.Fatalf("arblint over repo: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
	}
}

// TestSeededViolationFails proves the gate bites: a module that introduces a
// math/rand import into internal/shamir must produce randsource findings.
func TestSeededViolationFails(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seedcheck\n\ngo 1.22\n")
	write("internal/shamir/bad.go", `// Package shamir seeds a randsource violation.
package shamir

import "math/rand"

// Draw uses a predictable generator for share material.
func Draw() int64 { return rand.Int63() }
`)
	findings, err := arblint.Run(dir, []string{"./..."}, checkers.All())
	if err != nil {
		t.Fatalf("arblint over seeded module: %v", err)
	}
	if len(findings) < 2 { // the import plus the use site
		t.Fatalf("got %d findings, want at least 2 (import and use)", len(findings))
	}
	for _, f := range findings {
		if f.Analyzer != "randsource" {
			t.Errorf("unexpected analyzer %q: %s", f.Analyzer, f.Message)
		}
		if !strings.Contains(f.Message, "math/rand") {
			t.Errorf("finding does not name math/rand: %s", f.Message)
		}
	}
}
