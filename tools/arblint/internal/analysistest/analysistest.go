// Package analysistest runs an analyzer over packages under the calling
// test's testdata/src tree and checks its diagnostics against // want
// comments, following the conventions of
// golang.org/x/tools/go/analysis/analysistest:
//
//	bad := draw() // want `math/rand`
//
// expects a diagnostic on that line whose message matches the (back- or
// double-quoted) regular expression. Suppression directives are applied
// before matching, so a line carrying //arblint:ignore and no want comment
// asserts that the suppression works.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/dataflow"
	"arboretum/tools/arblint/internal/directive"
	"arboretum/tools/arblint/internal/load"
)

// wantRe matches the expectation list at the end of a // want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads ./testdata/src/<rel> for each rel, applies the analyzer and the
// suppression filter, and diffs the diagnostics against // want comments in
// the loaded files.
func Run(t *testing.T, a *analysis.Analyzer, rels ...string) {
	t.Helper()
	if len(rels) == 0 {
		t.Fatal("analysistest.Run: no testdata packages given")
	}
	patterns := make([]string, len(rels))
	for i, rel := range rels {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("testdata", "src", rel))
	}
	pkgs, err := load.Load(".", patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}

	var diags []analysis.Diagnostic
	var files []*ast.File
	fset := pkgs[0].Fset
	prog := dataflow.NewProgram(fset)
	for _, pkg := range pkgs {
		prog.AddPackage(pkg.ImportPath, pkg.Files, pkg.Info)
	}
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.ImportPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Prog:      prog,
		}
		if a.TestFiles {
			pass.TestFiles = pkg.TestFiles
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed: %v", pkg.ImportPath, err)
		}
		diags = append(diags, directive.Filter(pkg.Fset, allFiles(pkg), pass.Diagnostics())...)
		files = append(files, allFiles(pkg)...)
	}

	expects := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", e.file, e.line, e.raw)
		}
	}
}

func allFiles(pkg *load.Package) []*ast.File {
	return append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
}

// collectWants parses every "// want" comment into expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				specs := wantRe.FindAllString(text[idx+len("// want "):], -1)
				if len(specs) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
				}
				for _, spec := range specs {
					pattern := spec
					if strings.HasPrefix(spec, "\"") {
						var err error
						if pattern, err = strconv.Unquote(spec); err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, spec, err)
						}
					} else {
						pattern = strings.Trim(spec, "`")
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, spec, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: spec})
				}
			}
		}
	}
	return out
}

// claim marks the first unmet expectation matching the diagnostic.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.met && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.met = true
			return true
		}
	}
	return false
}

// Fprint formats one diagnostic as the driver would, for tests that assert
// on rendered output.
func Fprint(fset *token.FileSet, d analysis.Diagnostic) string {
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s (%s)", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
}
