package arblint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/arblint"
)

// TestStaleDirectiveIsAFinding drives the full pipeline over a scratch
// module: a directive that suppresses a finding stays silent, a directive
// that suppresses nothing becomes a finding of its own, and the stats name
// every analyzer that ran.
func TestStaleDirectiveIsAFinding(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("a.go", `package a

//arblint:ignore fake covered exception
var A = 1

//arblint:ignore fake exception whose finding is gone
var B = 2
`)

	// fake reports one diagnostic on the var A line, which the first
	// directive suppresses; the second directive then has nothing to do.
	fake := &analysis.Analyzer{
		Name: "fake",
		Doc:  "test analyzer",
		Run: func(pass *analysis.Pass) error {
			pass.Reportf(pass.Fset.File(pass.Files[0].Pos()).LineStart(4), "seeded finding")
			return nil
		},
	}

	findings, stats, err := arblint.RunStats(dir, []string{"./..."}, []*analysis.Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (the stale directive): %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "directive" || !strings.Contains(f.Message, "stale //arblint:ignore fake") {
		t.Errorf("unexpected finding %+v", f)
	}
	if f.Position.Line != 6 {
		t.Errorf("stale finding at line %d, want 6", f.Position.Line)
	}
	if len(stats) != 1 || stats[0].Analyzer != "fake" || stats[0].Packages != 1 {
		t.Errorf("unexpected stats %+v", stats)
	}
}
