// Package arblint drives a set of analyzers over package patterns: load,
// run, suppress, collect. Command arblint and the repo-wide regression test
// share this entry point, so "what the gate checks" is defined exactly once.
package arblint

import (
	"go/ast"
	"go/token"
	"time"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/dataflow"
	"arboretum/tools/arblint/internal/directive"
	"arboretum/tools/arblint/internal/load"
)

// Finding is one rendered diagnostic.
type Finding struct {
	Position token.Position `json:"position"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// Stat is one analyzer's aggregate wall time across every package of a run.
type Stat struct {
	Analyzer string        `json:"analyzer"`
	Packages int           `json:"packages"`
	Duration time.Duration `json:"duration_ns"`
}

// Run loads patterns relative to dir and applies every analyzer,
// returning the findings that survive //arblint:ignore suppression —
// including a finding for every directive that suppressed nothing.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	findings, _, err := RunStats(dir, patterns, analyzers)
	return findings, err
}

// RunStats is Run plus per-analyzer wall time.
func RunStats(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, []Stat, error) {
	pkgs, err := load.Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	// One shared function registry across every loaded package: this is
	// what lets a pass over internal/service reason about a helper defined
	// in internal/runtime. Registered before any analyzer runs, so summary
	// computation is independent of package order.
	var prog *dataflow.Program
	if len(pkgs) > 0 {
		prog = dataflow.NewProgram(pkgs[0].Fset)
		for _, pkg := range pkgs {
			prog.AddPackage(pkg.ImportPath, pkg.Files, pkg.Info)
		}
	}

	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	stats := make([]Stat, len(analyzers))
	var findings []Finding
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for i, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				PkgPath:   pkg.ImportPath,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
			}
			if a.TestFiles {
				pass.TestFiles = pkg.TestFiles
			}
			start := time.Now()
			if err := a.Run(pass); err != nil {
				return nil, nil, err
			}
			stats[i].Analyzer = a.Name
			stats[i].Packages++
			stats[i].Duration += time.Since(start)
			diags = append(diags, pass.Diagnostics()...)
		}
		files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		sup := directive.NewSuppressor(pkg.Fset, files)
		for _, d := range diags {
			if sup.Suppress(pkg.Fset, d) {
				continue
			}
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		for _, d := range sup.Stale(ran) {
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return findings, stats, nil
}
