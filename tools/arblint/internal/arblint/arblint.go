// Package arblint drives a set of analyzers over package patterns: load,
// run, suppress, collect. Command arblint and the repo-wide regression test
// share this entry point, so "what the gate checks" is defined exactly once.
package arblint

import (
	"go/ast"
	"go/token"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/directive"
	"arboretum/tools/arblint/internal/load"
)

// Finding is one rendered diagnostic.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Run loads patterns relative to dir and applies every analyzer,
// returning the findings that survive //arblint:ignore suppression.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				PkgPath:   pkg.ImportPath,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if a.TestFiles {
				pass.TestFiles = pkg.TestFiles
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		for _, d := range directive.Filter(pkg.Fset, files, diags) {
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return findings, nil
}
