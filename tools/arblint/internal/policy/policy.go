// Package policy is arblint's package-policy table: one place that records
// which Arboretum packages each invariant applies to. Analyzers consult it
// instead of hard-coding path lists, and docs/ANALYSIS.md documents every
// entry; changing the policy is a reviewed one-line diff here.
//
// Keys are module-relative package paths ("internal/ahe"). Matching is by
// exact path or by "/"-boundary suffix, so the table applies equally to the
// real packages ("arboretum/internal/ahe") and to analyzer testdata packages
// (".../testdata/src/internal/ahe"), and survives a module rename.
package policy

import "strings"

// Set is a set of module-relative package paths.
type Set map[string]bool

// Match returns the key of s that pkgPath falls under, or "".
func (s Set) Match(pkgPath string) string {
	for key := range s {
		if pkgPath == key || strings.HasSuffix(pkgPath, "/"+key) {
			return key
		}
	}
	return ""
}

// Matches reports whether pkgPath falls under any key of s.
func (s Set) Matches(pkgPath string) bool { return s.Match(pkgPath) != "" }

// SecrecyCritical lists the packages whose randomness feeds secrets — keys,
// shares, proofs, sortition tickets, DP noise. math/rand is banned there
// (randsource): its output is predictable from a small seed, which breaks
// both secrecy and the unpredictability the DP mechanisms assume. The
// simulation's deliberately deterministic draws carry
// //arblint:ignore randsource annotations so every exception is explicit.
var SecrecyCritical = Set{
	"internal/ahe":       true,
	"internal/bgv":       true,
	"internal/shamir":    true,
	"internal/mpc":       true,
	"internal/zkp":       true,
	"internal/vsr":       true,
	"internal/sortition": true,
	"internal/mechanism": true,
	"internal/runtime":   true,
	"internal/faults":    true,
}

// SimulationExempt lists SecrecyCritical packages that are pure simulation
// machinery: their randomness decides which *injected faults* fire, never key
// material, shares, or noise, and replayability from a small seed is the
// whole point (docs/FAULTS.md). The randsource math/rand ban is lifted there
// wholesale — no per-site //arblint:ignore needed — so fault-schedule code
// stays readable while the policy table still records the exception
// explicitly.
var SimulationExempt = Set{
	"internal/faults": true,
}

// DeterministicBench lists the packages whose *bench_test.go files must not
// draw from crypto/rand (randsource): scripts/bench.sh tracks kernel timings
// across commits in BENCH_kernels.json, and nondeterministic benchmark
// inputs (key material, polynomial coefficients) add run-to-run noise to the
// numbers being compared. Benchmarks there use internal/benchrand instead.
var DeterministicBench = Set{
	"internal/ahe": true,
	"internal/bgv": true,
}

// NoiseSource is the package whose noise constructors budgetflow guards.
const NoiseSource = "internal/mechanism"

// NoiseConstructors are the internal/mechanism entry points that draw DP
// noise or sampling randomness. Calling one adds privacy loss, so every call
// site must be covered by internal/privacy's budget accounting (the §4.2
// certification step) — which is why budgetflow restricts callers to
// BudgetApprovedCallers.
var NoiseConstructors = map[string]bool{
	"Laplace":       true,
	"Gumbel":        true,
	"Exponential":   true,
	"TopK":          true,
	"NewSampleBins": true,
}

// BudgetApprovedCallers are the packages allowed to call NoiseConstructors:
// the mechanism package itself, the certification/budget layer, and the
// runtime, whose Deployment.Run charges the certificate against the budget
// before any vignette executes.
var BudgetApprovedCallers = Set{
	"internal/mechanism": true,
	"internal/privacy":   true,
	"internal/runtime":   true,
}

// PoolOnly lists the packages whose fan-out must go through the
// internal/parallel worker pool (rawgo): raw go statements and ad-hoc
// sync.WaitGroup fan-out there would escape the pool's determinism
// guarantees and the worker-count matrix the race pass covers (see
// docs/CONCURRENCY.md).
var PoolOnly = Set{
	"internal/ahe":     true,
	"internal/bgv":     true,
	"internal/runtime": true,
	"internal/planner": true,
	"internal/mpc":     true,
}

// MustCheckErrors lists the packages whose error returns may not be
// discarded (errdiscard): crypto, marshal, MPC, and pool APIs, where a
// swallowed error means silently wrong ciphertexts, shares, or sums.
// "crypto/rand" and "hash" cover rand.Read and hash.Hash.Write call sites in
// the standard library.
var MustCheckErrors = Set{
	"internal/ahe":       true,
	"internal/bgv":       true,
	"internal/shamir":    true,
	"internal/mpc":       true,
	"internal/merkle":    true,
	"internal/zkp":       true,
	"internal/vsr":       true,
	"internal/mechanism": true,
	"internal/parallel":  true,
	"internal/privacy":   true,
	"internal/sortition": true,
	"crypto/rand":        true,
	"hash":               true,
}

// MarshalMethods are method names whose error results may never be
// discarded regardless of the receiver's package: a dropped (un)marshal
// error turns into a corrupted wire object far from the cause.
var MarshalMethods = map[string]bool{
	"MarshalBinary":   true,
	"UnmarshalBinary": true,
	"AppendBinary":    true,
}
