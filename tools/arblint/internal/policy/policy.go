// Package policy is arblint's package-policy table: one place that records
// which Arboretum packages each invariant applies to. Analyzers consult it
// instead of hard-coding path lists, and docs/ANALYSIS.md documents every
// entry; changing the policy is a reviewed one-line diff here.
//
// Keys are module-relative package paths ("internal/ahe"). Matching is by
// exact path or by "/"-boundary suffix, so the table applies equally to the
// real packages ("arboretum/internal/ahe") and to analyzer testdata packages
// (".../testdata/src/internal/ahe"), and survives a module rename.
package policy

import "strings"

// Set is a set of module-relative package paths.
type Set map[string]bool

// Match returns the key of s that pkgPath falls under, or "".
func (s Set) Match(pkgPath string) string {
	for key := range s {
		if pkgPath == key || strings.HasSuffix(pkgPath, "/"+key) {
			return key
		}
	}
	return ""
}

// Matches reports whether pkgPath falls under any key of s.
func (s Set) Matches(pkgPath string) bool { return s.Match(pkgPath) != "" }

// FuncIn reports whether the function name defined in package pkgPath falls
// under a pkg→names table, with Set's suffix matching on the package key.
func FuncIn(table map[string]map[string]bool, pkgPath, name string) bool {
	for key, names := range table {
		if (pkgPath == key || strings.HasSuffix(pkgPath, "/"+key)) && names[name] {
			return true
		}
	}
	return false
}

// SecrecyCritical lists the packages whose randomness feeds secrets — keys,
// shares, proofs, sortition tickets, DP noise. math/rand is banned there
// (randsource): its output is predictable from a small seed, which breaks
// both secrecy and the unpredictability the DP mechanisms assume. The
// simulation's deliberately deterministic draws carry
// //arblint:ignore randsource annotations so every exception is explicit.
var SecrecyCritical = Set{
	"internal/ahe":       true,
	"internal/bgv":       true,
	"internal/shamir":    true,
	"internal/mpc":       true,
	"internal/zkp":       true,
	"internal/vsr":       true,
	"internal/sortition": true,
	"internal/mechanism": true,
	"internal/runtime":   true,
	"internal/faults":    true,
	// The gateway mints job IDs analysts cannot be allowed to predict.
	"internal/service": true,
}

// SimulationExempt lists SecrecyCritical packages that are pure simulation
// machinery: their randomness decides which *injected faults* fire, never key
// material, shares, or noise, and replayability from a small seed is the
// whole point (docs/FAULTS.md). The randsource math/rand ban is lifted there
// wholesale — no per-site //arblint:ignore needed — so fault-schedule code
// stays readable while the policy table still records the exception
// explicitly.
var SimulationExempt = Set{
	"internal/faults": true,
}

// DeterministicBench lists the packages whose *bench_test.go files must not
// draw from crypto/rand (randsource): scripts/bench.sh tracks kernel timings
// across commits in BENCH_kernels.json, and nondeterministic benchmark
// inputs (key material, polynomial coefficients) add run-to-run noise to the
// numbers being compared. Benchmarks there use internal/benchrand instead.
var DeterministicBench = Set{
	"internal/ahe": true,
	"internal/bgv": true,
}

// NoiseSource is the package whose noise constructors budgetflow guards.
const NoiseSource = "internal/mechanism"

// NoiseConstructors are the internal/mechanism entry points that draw DP
// noise or sampling randomness. Calling one adds privacy loss, so every call
// site must be covered by internal/privacy's budget accounting (the §4.2
// certification step) — which is why budgetflow restricts callers to
// BudgetApprovedCallers.
var NoiseConstructors = map[string]bool{
	"Laplace":       true,
	"Gumbel":        true,
	"Exponential":   true,
	"TopK":          true,
	"NewSampleBins": true,
}

// BudgetApprovedCallers are the packages allowed to call NoiseConstructors:
// the mechanism package itself, the certification/budget layer, and the
// runtime, whose Deployment.Run charges the certificate against the budget
// before any vignette executes.
var BudgetApprovedCallers = Set{
	"internal/mechanism": true,
	"internal/privacy":   true,
	"internal/runtime":   true,
}

// PoolOnly lists the packages whose fan-out must go through the
// internal/parallel worker pool (rawgo): raw go statements and ad-hoc
// sync.WaitGroup fan-out there would escape the pool's determinism
// guarantees and the worker-count matrix the race pass covers (see
// docs/CONCURRENCY.md). internal/service joined with the gateway: its two
// daemon-lifecycle goroutines (executor-pool supervisor, per-job watchdog)
// carry //arblint:ignore annotations recording why each is outside the pool.
var PoolOnly = Set{
	"internal/ahe":     true,
	"internal/bgv":     true,
	"internal/runtime": true,
	"internal/planner": true,
	"internal/mpc":     true,
	"internal/service": true,
}

// MustCheckErrors lists the packages whose error returns may not be
// discarded (errdiscard): crypto, marshal, MPC, and pool APIs, where a
// swallowed error means silently wrong ciphertexts, shares, or sums.
// "crypto/rand" and "hash" cover rand.Read and hash.Hash.Write call sites in
// the standard library.
var MustCheckErrors = Set{
	"internal/ahe":       true,
	"internal/bgv":       true,
	"internal/shamir":    true,
	"internal/mpc":       true,
	"internal/merkle":    true,
	"internal/zkp":       true,
	"internal/vsr":       true,
	"internal/mechanism": true,
	"internal/parallel":  true,
	"internal/privacy":   true,
	"internal/sortition": true,
	"crypto/rand":        true,
	"hash":               true,
	// Durability layer (PRs 5 and 8): a discarded wal.Append, ledger, or
	// journal error is a silently-lost durability guarantee.
	"internal/wal":     true,
	"internal/ledger":  true,
	"internal/service": true,
}

// MarshalMethods are method names whose error results may never be
// discarded regardless of the receiver's package: a dropped (un)marshal
// error turns into a corrupted wire object far from the cause.
var MarshalMethods = map[string]bool{
	"MarshalBinary":   true,
	"UnmarshalBinary": true,
	"AppendBinary":    true,
}

// ReleaseBoundaries lists the packages where values leave the platform:
// the gateway's JSON responses and result digests, and the CLIs' stdout.
// noiserelease taints raw-aggregate producers there and requires every flow
// into an output sink to pass through a noise mechanism or the runtime's
// certified Run — the static complement of internal/privacy's runtime
// certifier (PAPER.md §3, §5).
var ReleaseBoundaries = Set{
	"internal/service": true,
	"cmd/arboretum":    true,
	"cmd/arboretumd":   true,
}

// RawAggregateSources maps a package to the functions whose results are
// pre-noise aggregates: decrypted homomorphic sums and reconstructed
// secret-shared values. These are the §5 intermediate values nothing may
// release un-noised.
var RawAggregateSources = map[string]map[string]bool{
	"internal/ahe":    {"Decrypt": true, "Sum": true},
	"internal/bgv":    {"Decrypt": true},
	"internal/shamir": {"Reconstruct": true},
}

// ReleaseSanitizers maps a package to the functions whose results are
// certified released values: the runtime's Run executes the full certify →
// noise → release pipeline, so its outputs are safe to encode.
var ReleaseSanitizers = map[string]map[string]bool{
	"internal/runtime": {"Run": true},
}

// SecretTypes maps a package to the named types whose whole values are
// cryptographic secrets: secretflow bans any flow from them into error
// strings, logs, or encoders, in every package. Field projection is
// deliberately exempt (a Share's evaluation point is public; its value is
// not reachable without projecting the whole struct into a format verb).
var SecretTypes = map[string]map[string]bool{
	"internal/ahe":    {"PrivateKey": true},
	"internal/bgv":    {"SecretKey": true},
	"internal/shamir": {"Share": true},
	"internal/vsr":    {"Dealing": true},
}

// AliasProne maps a package to the named types whose values alias pooled or
// otherwise recycled memory: a fixed.Slab checked out of a SlabPool is
// returned to the pool and handed to the next operation, and a bgv.Poly may
// be a view into a pooled scratch slab. bigintalias extends its
// no-uncopied-boundary-crossing rule from *big.Int to these types — an
// exported function that returns such a field of its receiver or parameters,
// or stores a caller's value into one, must copy first (or annotate the
// documented ownership transfer with //arblint:ignore bigintalias).
var AliasProne = map[string]map[string]bool{
	"internal/bgv":   {"Poly": true},
	"internal/fixed": {"Slab": true},
}

// CheckpointFuncs maps a package to the "Type.method" (or plain function)
// names of its unbounded hot loops: the ingest shard driver and the
// interpreter's vignette/statement loops, which PR 8's per-job deadlines
// rely on to observe cancellation. ctxcheckpoint requires each listed
// function to exist and to contain a loop with a cancellation checkpoint
// (a ctx.Done select, a ctx.Err poll, or a call reaching one), so the
// deadline machinery cannot silently rot out of these paths.
var CheckpointFuncs = map[string][]string{
	"internal/runtime": {"ingestSpec.runShard", "interp.runVignette", "interp.run"},
}

// WALClients lists the packages that own a write-ahead log through
// internal/wal. walorder enforces fsync-before-apply from the client side:
// the durable-state fields their apply callbacks maintain may not be
// mutated on any path that precedes a WAL append — disk is never behind
// memory (docs/FAULTS.md).
var WALClients = Set{
	"internal/ledger":  true,
	"internal/service": true,
}

// Unregulated lists the internal packages the policy table deliberately
// leaves outside every analyzer-scoping set, each with a reason. The policy
// regression test fails when a package is neither governed nor listed here,
// so adding a package forces an explicit policy decision.
var Unregulated = Set{
	"internal/baseline":  true, // reference implementations, compared against, never released
	"internal/benchrand": true, // deterministic bench inputs by design (see DeterministicBench)
	"internal/costmodel": true, // pure arithmetic over plan shapes; no secrets, no I/O
	"internal/eval":      true, // offline accuracy-evaluation harness, not a release path
	"internal/hashing":   true, // keyed device-row hashing; error discipline via the stdlib "hash" entry
	"internal/lang":      true, // DSL parser/AST; pure syntax
	"internal/plan":      true, // plan IR and variant expansion; pure data
	"internal/queries":   true, // query catalogue; static text
	"internal/types":     true, // shared value types; pure data
}
