package policy

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the policy package")
		}
		dir = parent
	}
}

// governingSets is every policy structure that scopes an analyzer to
// packages, so the audit below sees the whole table.
func governingSets() map[string]Set {
	sets := map[string]Set{
		"SecrecyCritical":       SecrecyCritical,
		"SimulationExempt":      SimulationExempt,
		"DeterministicBench":    DeterministicBench,
		"BudgetApprovedCallers": BudgetApprovedCallers,
		"PoolOnly":              PoolOnly,
		"MustCheckErrors":       MustCheckErrors,
		"ReleaseBoundaries":     ReleaseBoundaries,
		"WALClients":            WALClients,
		"NoiseSource":           {NoiseSource: true},
	}
	tables := map[string]Set{
		"RawAggregateSources": {},
		"ReleaseSanitizers":   {},
		"SecretTypes":         {},
		"AliasProne":          {},
		"CheckpointFuncs":     {},
	}
	for key := range RawAggregateSources {
		tables["RawAggregateSources"][key] = true
	}
	for key := range ReleaseSanitizers {
		tables["ReleaseSanitizers"][key] = true
	}
	for key := range SecretTypes {
		tables["SecretTypes"][key] = true
	}
	for key := range AliasProne {
		tables["AliasProne"][key] = true
	}
	for key := range CheckpointFuncs {
		tables["CheckpointFuncs"][key] = true
	}
	for name, s := range tables {
		sets[name] = s
	}
	return sets
}

// TestEveryInternalPackageGoverned fails when a package under internal/ is
// neither covered by a governing set nor recorded in Unregulated: adding a
// package forces an explicit policy decision.
func TestEveryInternalPackageGoverned(t *testing.T) {
	root := repoRoot(t)
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	sets := governingSets()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := "internal/" + e.Name()
		hasGo := false
		files, err := os.ReadDir(filepath.Join(root, "internal", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if strings.HasSuffix(f.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			continue
		}
		governed := Unregulated.Matches(pkg)
		for _, s := range sets {
			if s.Matches(pkg) {
				governed = true
			}
		}
		if !governed {
			t.Errorf("%s is neither covered by a policy set nor listed in Unregulated: decide and record its policy", pkg)
		}
		if Unregulated.Matches(pkg) {
			for name, s := range sets {
				if s.Matches(pkg) {
					t.Errorf("%s is listed in Unregulated but also governed by %s: drop one", pkg, name)
				}
			}
		}
	}
}

// TestPolicyKeysExist fails when a policy entry names a repo package that no
// longer exists on disk: deleting a package must retire its policy rows.
func TestPolicyKeysExist(t *testing.T) {
	root := repoRoot(t)
	sets := governingSets()
	sets["Unregulated"] = Unregulated
	for name, s := range sets {
		for key := range s {
			if !strings.HasPrefix(key, "internal/") && !strings.HasPrefix(key, "cmd/") {
				continue // stdlib entries like "crypto/rand" and "hash"
			}
			if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(key))); err != nil {
				t.Errorf("%s lists %q but that package does not exist: %v", name, key, err)
			}
		}
	}
}
