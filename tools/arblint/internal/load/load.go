// Package load turns package patterns into parsed, type-checked packages
// without importing golang.org/x/tools/go/packages: it shells out to
// `go list -export -deps -json` for the package graph and compiled export
// data, parses the root packages' sources, and type-checks them with the
// standard library's gc importer reading the export files. This works fully
// offline — the only tool it needs is the go command that built the repo.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one root package requested by a pattern.
type Package struct {
	ImportPath string
	Dir        string

	Fset *token.FileSet

	// Files are the package's compiled sources (GoFiles), type-checked.
	Files []*ast.File

	// TestFiles are the package's _test.go sources (TestGoFiles and
	// XTestGoFiles), parsed with comments but not type-checked.
	TestFiles []*ast.File

	// Types and Info describe Files. They are nil when type checking
	// failed; TypeErrors then records why.
	Types *types.Package
	Info  *types.Info

	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Load lists patterns in dir (the module being linted) and returns the root
// packages, parsed and type-checked. Pattern syntax is the go command's;
// explicit directory arguments (./tools/arblint/testdata/src/foo) work even
// under testdata, which `...` wildcards skip.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Standard,DepOnly,Dir,GoFiles,TestGoFiles,XTestGoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, r := range roots {
		if r.Error != nil && len(r.GoFiles) == 0 && len(r.TestGoFiles) == 0 && len(r.XTestGoFiles) == 0 {
			return nil, fmt.Errorf("package %s: %s", r.ImportPath, r.Error.Err)
		}
		pkg := &Package{ImportPath: r.ImportPath, Dir: r.Dir, Fset: fset}
		parse := func(names []string) ([]*ast.File, error) {
			var files []*ast.File
			for _, name := range names {
				af, err := parser.ParseFile(fset, filepath.Join(r.Dir, name), nil, parser.ParseComments)
				if err != nil {
					return nil, fmt.Errorf("package %s: %v", r.ImportPath, err)
				}
				files = append(files, af)
			}
			return files, nil
		}
		var err error
		if pkg.Files, err = parse(r.GoFiles); err != nil {
			return nil, err
		}
		testNames := append(append([]string{}, r.TestGoFiles...), r.XTestGoFiles...)
		if pkg.TestFiles, err = parse(testNames); err != nil {
			return nil, err
		}
		if len(pkg.Files) > 0 {
			info := &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Implicits:  map[ast.Node]types.Object{},
			}
			conf := types.Config{
				Importer: imp,
				Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
			}
			tpkg, err := conf.Check(r.ImportPath, fset, pkg.Files, info)
			if err != nil && tpkg == nil {
				return nil, fmt.Errorf("package %s: type checking: %v", r.ImportPath, err)
			}
			pkg.Types = tpkg
			pkg.Info = info
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
