// Package dataflow is arblint's interprocedural analysis engine: a
// function-level IR over the go/types-checked ASTs the loader produces, with
// three facilities the flow-sensitive checkers build on:
//
//   - a registry of every function body across all loaded packages, so an
//     analyzer looking at package P can reason about what a callee in
//     package Q actually does (Program, Func);
//   - a control-flow graph per function with a may-precede query over basic
//     blocks, for ordering invariants like "no durable-state mutation before
//     the WAL append returns" (cfg.go);
//   - a taint engine with per-function summaries memoized across the whole
//     program, so "this value derives from a raw aggregate" propagates
//     bottom-up through helper functions instead of stopping at the first
//     call site (taint.go).
//
// Like the rest of arblint it is standard-library only. The engine is a
// deliberate over/under-approximation tuned for invariant checking, not a
// sound whole-program analysis; the limits (heap flows, closures as values,
// reflection) are documented in docs/ANALYSIS.md.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Program is the cross-package function registry plus the memo tables the
// taint and reachability analyses share. One Program is built per driver run
// and handed to every pass, so a summary computed while linting
// internal/service is reused when internal/ledger asks about the same
// callee.
type Program struct {
	Fset *token.FileSet

	fns map[*types.Func]*Func

	summaries  map[sumKey]*Summary
	inProgress map[sumKey]bool

	matchMemo map[matchKey]bool
	matchSeen map[matchKey]bool
}

type sumKey struct {
	spec string
	fn   *types.Func
}

type matchKey struct {
	key string
	fn  *types.Func
}

// Func is one function body the registry knows: a declared function or
// method with source available in some loaded package. Function literals are
// analyzed as part of their enclosing function, not registered separately.
type Func struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	PkgPath string
	Info    *types.Info

	cfg *CFG
}

// NewProgram returns an empty registry around fset (the single FileSet the
// loader threads through every package).
func NewProgram(fset *token.FileSet) *Program {
	return &Program{
		Fset:       fset,
		fns:        map[*types.Func]*Func{},
		summaries:  map[sumKey]*Summary{},
		inProgress: map[sumKey]bool{},
		matchMemo:  map[matchKey]bool{},
		matchSeen:  map[matchKey]bool{},
	}
}

// AddPackage registers every declared function of one type-checked package.
// info may be nil (type checking failed); the package then contributes no
// bodies and callees into it fall back to conservative defaults.
func (p *Program) AddPackage(pkgPath string, files []*ast.File, info *types.Info) {
	if info == nil {
		return
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.fns[obj] = &Func{Obj: obj, Decl: fd, PkgPath: pkgPath, Info: info}
		}
	}
}

// FuncOf returns the registered body for obj, or nil when its source was not
// loaded (standard library, export-data-only dependencies, interface
// methods).
func (p *Program) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return p.fns[obj]
}

// CFG returns the function's control-flow graph, built on first use.
func (f *Func) CFG() *CFG {
	if f.cfg == nil {
		f.cfg = BuildCFG(f.Decl.Body)
	}
	return f.cfg
}

// CalleeOf resolves a call expression to the *types.Func it statically
// invokes, using the calling package's type info. Calls through function
// values, stored fields, and built-ins resolve to nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// FuncMatches reports whether fn's body satisfies match directly, or any
// statically resolvable callee with a known body does, transitively. key
// namespaces the memo: the same fn can be queried under different predicates
// (e.g. "reaches a WAL append" vs "contains a cancellation checkpoint").
// Unresolvable calls and bodies outside the registry contribute false, so
// the query under-approximates — callers use it to *credit* behavior
// (a checkpoint exists, an append happens), never to prove absence.
func (p *Program) FuncMatches(fn *types.Func, key string, match func(f *Func) bool) bool {
	if fn == nil {
		return false
	}
	mk := matchKey{key, fn}
	if v, ok := p.matchMemo[mk]; ok {
		return v
	}
	if p.matchSeen[mk] { // cycle: optimistic false, finalized by the root call
		return false
	}
	p.matchSeen[mk] = true
	defer delete(p.matchSeen, mk)

	f := p.fns[fn]
	result := false
	if f != nil {
		if match(f) {
			result = true
		} else {
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				if result {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeOf(f.Info, call); callee != nil && callee != fn {
					if p.FuncMatches(callee, key, match) {
						result = true
					}
				}
				return true
			})
		}
	}
	p.matchMemo[mk] = result
	return result
}
