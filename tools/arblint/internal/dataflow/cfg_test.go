package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns the CFG plus a lookup
// from a marker comment ("/*a*/") to the position of the statement carrying
// it.
func parseBody(t *testing.T, body string) (*CFG, func(string) token.Pos) {
	t.Helper()
	src := "package p\nfunc f(c bool, xs []int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fd.Body)
	// A marker names the statement that starts on its line.
	stmtOnLine := map[int]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			line := fset.Position(s.Pos()).Line
			if _, seen := stmtOnLine[line]; !seen {
				stmtOnLine[line] = s.Pos()
			}
		}
		return true
	})
	marks := map[string]token.Pos{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name := strings.Trim(c.Text, "/* ")
			marks[name] = stmtOnLine[fset.Position(c.Pos()).Line]
		}
	}
	return cfg, func(name string) token.Pos {
		pos, ok := marks[name]
		if !ok || pos == token.NoPos {
			t.Fatalf("no statement for marker %q", name)
		}
		return pos
	}
}

func TestMayPrecedeStraightLine(t *testing.T) {
	cfg, at := parseBody(t, `
	/*a*/ _ = 1
	/*b*/ _ = 2
`)
	if !cfg.MayPrecede(at("a"), at("b")) {
		t.Error("a should precede b in straight-line code")
	}
	if cfg.MayPrecede(at("b"), at("a")) {
		t.Error("b cannot precede a without a cycle")
	}
	if cfg.MayPrecede(at("a"), at("a")) {
		t.Error("a statement does not precede itself without a cycle")
	}
}

func TestMayPrecedeBranches(t *testing.T) {
	cfg, at := parseBody(t, `
	if c {
		/*then*/ _ = 1
	} else {
		/*else*/ _ = 2
	}
	/*join*/ _ = 3
`)
	if cfg.MayPrecede(at("then"), at("else")) || cfg.MayPrecede(at("else"), at("then")) {
		t.Error("mutually exclusive branches cannot precede each other")
	}
	if !cfg.MayPrecede(at("then"), at("join")) || !cfg.MayPrecede(at("else"), at("join")) {
		t.Error("both branches precede the join")
	}
	if cfg.MayPrecede(at("join"), at("then")) {
		t.Error("the join cannot precede a branch")
	}
}

func TestMayPrecedeLoopBackEdge(t *testing.T) {
	cfg, at := parseBody(t, `
	for _, x := range xs {
		/*first*/ _ = x
		/*second*/ _ = x
	}
	/*after*/ _ = 0
`)
	if !cfg.MayPrecede(at("second"), at("first")) {
		t.Error("inside a loop, a later statement precedes an earlier one via the back edge")
	}
	if !cfg.MayPrecede(at("first"), at("after")) {
		t.Error("the loop body precedes the code after the loop")
	}
	if cfg.MayPrecede(at("after"), at("first")) {
		t.Error("code after the loop cannot re-enter it")
	}
}

func TestMayPrecedeEarlyReturn(t *testing.T) {
	cfg, at := parseBody(t, `
	if c {
		/*pre*/ _ = 1
		return
	}
	/*rest*/ _ = 2
`)
	if cfg.MayPrecede(at("pre"), at("rest")) {
		t.Error("a statement before return cannot reach code after the if")
	}
}
