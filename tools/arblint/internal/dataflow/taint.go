// Taint analysis with interprocedural summaries. Each function is analyzed
// once per Spec: parameters (receiver first) start tainted with their own
// param bit, sources add the source bit, and a flow-insensitive fixpoint
// over the body's assignments propagates taint through locals. The result is
// a Summary — the taint of each result in terms of the inputs, the
// parameters that reach a sink inside the function (transitively), and the
// violations where source-derived data hit a sink directly. Callers
// instantiate a callee's summary by substituting argument taints for param
// bits, which is what makes the analysis interprocedural without a global
// fixpoint: summaries are memoized bottom-up on demand.
//
// Approximations, deliberately chosen and documented in docs/ANALYSIS.md:
//
//   - Value-level, not heap-level: storing a secret into a struct field or
//     map and reading it back elsewhere is not tracked. Field projection
//     (x.f) re-derives taint from the field's own type rather than
//     inheriting the whole value's source bit or param linkage — `share.X`
//     (a public evaluation point) is not a leak just because `share` is.
//   - Flow-insensitive within a function: assignments join, never kill.
//     Sanitization is modeled at expressions (a sanitizer call's result is
//     clean; mixing in a cleanser's noise sets the noise bit, which
//     suppresses the source bit at sinks).
//   - Closures are analyzed inline with their enclosing function (captured
//     variables share taint), but a closure passed elsewhere as a value is
//     not re-analyzed at its eventual call site.
//   - Recursion is resolved optimistically (empty summary on a cycle).
//   - Error values launder: an expression of type error is always clean. A
//     secret flowing into fmt.Errorf is reported at that call; the error it
//     returns is a description of the failure, and propagating taint through
//     it would flag every caller that wraps an error from secret-handling
//     code.

package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Taint is a bitset: the source bit, the noise bit, and one bit per
// parameter of the function under analysis.
type Taint uint64

const (
	// TaintSource marks data derived from a Spec source.
	TaintSource Taint = 1 << 0
	// TaintNoise marks data mixed with a cleanser's output (calibrated
	// noise); it suppresses TaintSource at sink checks.
	TaintNoise Taint = 1 << 1

	paramShift = 2
	maxParams  = 62
)

// ParamBit returns the taint bit for parameter i (receiver = 0), or 0 when
// the function has more parameters than the bitset tracks.
func ParamBit(i int) Taint {
	if i < 0 || i >= maxParams {
		return 0
	}
	return 1 << (paramShift + i)
}

// hot reports whether t is source-tainted and not noise-suppressed.
func (t Taint) hot() bool { return t&TaintSource != 0 && t&TaintNoise == 0 }

// Spec configures one taint domain. All callbacks may be nil.
type Spec struct {
	// Key namespaces the summary memo; each analyzer uses a distinct key.
	Key string

	// SourceCall marks a call whose results are tainted, returning a
	// description for diagnostics ("ahe.Decrypt").
	SourceCall func(callee *types.Func, call *ast.CallExpr) (string, bool)

	// SourceType marks a type whose values are inherently tainted
	// (pointer/slice/array wrappers are unwrapped before the check).
	SourceType func(t types.Type) (string, bool)

	// Sanitizer marks a call whose results are certified clean (e.g. the
	// runtime's Run, which releases only noised outputs).
	Sanitizer func(callee *types.Func, call *ast.CallExpr) bool

	// Cleanser marks a call producing calibrated noise: combining its
	// result into a value sets TaintNoise, releasing the value.
	Cleanser func(callee *types.Func, call *ast.CallExpr) bool

	// Sink marks a call whose arguments must not be source-tainted,
	// returning a description for diagnostics ("json.Encode").
	Sink func(callee *types.Func, call *ast.CallExpr) (string, bool)
}

// Summary is the per-function result of the taint analysis.
type Summary struct {
	// Results holds each result's taint in terms of the function's inputs:
	// param bits for pass-through, TaintSource when the function itself
	// sources, TaintNoise when it noises.
	Results []Taint
	// ResultSrc describes the source behind a TaintSource bit in Results.
	ResultSrc []string

	// Sinks lists parameters that reach a sink inside the function,
	// directly or through further calls.
	Sinks []ParamSink

	// Violations are source-to-sink flows contained entirely in this
	// function (including flows that enter a callee parameter which the
	// callee's summary says reaches a sink).
	Violations []Violation
}

// ParamSink records that parameter Param's value reaches the sink described
// by Sink at Pos (the sink call's argument position in this function).
type ParamSink struct {
	Param int
	Sink  string
	Pos   token.Pos
}

// Violation is one source-to-sink flow.
type Violation struct {
	Pos    token.Pos
	Source string
	Sink   string
}

// TaintSummary returns fn's summary under spec, computing and memoizing it
// (and every summary it depends on) on first use. Functions without a
// registered body get a conservative default: every result carries every
// parameter's taint plus any type-derived source taint, and no sinks.
func (p *Program) TaintSummary(spec *Spec, fn *types.Func) *Summary {
	key := sumKey{spec.Key, fn}
	if s, ok := p.summaries[key]; ok {
		return s
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		s := &Summary{}
		p.summaries[key] = s
		return s
	}
	if p.inProgress[key] {
		// Recursion: optimistic empty summary for the cycle edge. Not
		// memoized, so the outer computation's final answer wins.
		return emptySummary(sig)
	}
	f := p.fns[fn]
	if f == nil {
		s := defaultSummary(spec, sig)
		p.summaries[key] = s
		return s
	}
	p.inProgress[key] = true
	s := p.analyze(spec, f, sig)
	delete(p.inProgress, key)
	p.summaries[key] = s
	return s
}

func emptySummary(sig *types.Signature) *Summary {
	n := sig.Results().Len()
	return &Summary{Results: make([]Taint, n), ResultSrc: make([]string, n)}
}

// defaultSummary is the conservative model for bodies the registry lacks:
// results carry the union of all inputs' taint (so passing tainted data
// through an unknown helper does not launder it), plus source taint when a
// result's own type is a source type.
func defaultSummary(spec *Spec, sig *types.Signature) *Summary {
	nparams := sig.Params().Len()
	if sig.Recv() != nil {
		nparams++
	}
	var all Taint
	for i := 0; i < nparams; i++ {
		all |= ParamBit(i)
	}
	n := sig.Results().Len()
	s := &Summary{Results: make([]Taint, n), ResultSrc: make([]string, n)}
	for i := 0; i < n; i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			continue // error results launder (see the package comment)
		}
		s.Results[i] = all
		if spec.SourceType != nil {
			if desc, ok := typeSource(spec, sig.Results().At(i).Type()); ok {
				s.Results[i] |= TaintSource
				s.ResultSrc[i] = desc
			}
		}
	}
	return s
}

// typeSource unwraps pointers, slices, and arrays and asks the spec whether
// the underlying type is a source.
func typeSource(spec *Spec, t types.Type) (string, bool) {
	if spec.SourceType == nil || t == nil {
		return "", false
	}
	for i := 0; i < 8; i++ {
		if desc, ok := spec.SourceType(t); ok {
			return desc, true
		}
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		default:
			return "", false
		}
	}
	return "", false
}

// tv is a taint value with the description of its first source contributor.
type tv struct {
	t   Taint
	src string
}

func (a tv) join(b tv) tv {
	out := tv{t: a.t | b.t, src: a.src}
	if out.src == "" {
		out.src = b.src
	}
	return out
}

// taintState is the per-function fixpoint state.
type taintState struct {
	prog *Program
	spec *Spec
	f    *Func

	paramObjs []*types.Var
	resObjs   []*types.Var // named results, for naked returns

	env     map[types.Object]tv
	res     []tv
	sinks   map[ParamSink]bool
	viol    map[Violation]bool
	changed bool
}

func (p *Program) analyze(spec *Spec, f *Func, sig *types.Signature) *Summary {
	st := &taintState{
		prog:  p,
		spec:  spec,
		f:     f,
		env:   map[types.Object]tv{},
		res:   make([]tv, sig.Results().Len()),
		sinks: map[ParamSink]bool{},
		viol:  map[Violation]bool{},
	}
	if r := sig.Recv(); r != nil {
		st.paramObjs = append(st.paramObjs, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		st.paramObjs = append(st.paramObjs, sig.Params().At(i))
	}
	for i, v := range st.paramObjs {
		t := tv{t: ParamBit(i)}
		if desc, ok := typeSource(spec, v.Type()); ok {
			t.t |= TaintSource
			t.src = desc
		}
		st.env[v] = t
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" {
			st.resObjs = append(st.resObjs, v)
		} else {
			st.resObjs = append(st.resObjs, nil)
		}
	}

	for iter := 0; iter < 64; iter++ {
		st.changed = false
		st.scanStmts(f.Decl.Body.List, false)
		if !st.changed {
			break
		}
	}

	s := &Summary{
		Results:   make([]Taint, len(st.res)),
		ResultSrc: make([]string, len(st.res)),
	}
	for i, r := range st.res {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			continue // error results launder (see the package comment)
		}
		s.Results[i] = r.t
		s.ResultSrc[i] = r.src
	}
	for ps := range st.sinks {
		s.Sinks = append(s.Sinks, ps)
	}
	sort.Slice(s.Sinks, func(i, j int) bool {
		a, b := s.Sinks[i], s.Sinks[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Param != b.Param {
			return a.Param < b.Param
		}
		return a.Sink < b.Sink
	})
	for v := range st.viol {
		s.Violations = append(s.Violations, v)
	}
	sort.Slice(s.Violations, func(i, j int) bool {
		a, b := s.Violations[i], s.Violations[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Sink < b.Sink
	})
	return s
}

// bind joins t into the variable a simple lvalue denotes; compound lvalues
// (x.f, x[i], *p) taint their base variable, over-approximating container
// contents.
func (st *taintState) bind(lhs ast.Expr, t tv) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return
			}
			obj := st.f.Info.ObjectOf(e)
			if obj == nil {
				return
			}
			old := st.env[obj]
			nw := old.join(t)
			if nw.t != old.t || nw.src != old.src {
				st.env[obj] = nw
				st.changed = true
			}
			return
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return
		}
	}
}

// scanStmts walks statements, interpreting assignments and returns and
// checking every call. inClosure suppresses result recording for returns
// that belong to a nested function literal.
func (st *taintState) scanStmts(list []ast.Stmt, inClosure bool) {
	for _, s := range list {
		st.scanStmt(s, inClosure)
	}
}

func (st *taintState) scanStmt(s ast.Stmt, inClosure bool) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// multi-value: call, map index, type assert, channel receive
			ts := st.multiValue(s.Rhs[0], len(s.Lhs), inClosure)
			for i, lhs := range s.Lhs {
				st.bind(lhs, ts[i])
			}
			return
		}
		for i, rhs := range s.Rhs {
			t := st.expr(rhs, inClosure)
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				t = t.join(st.expr(s.Lhs[i], inClosure)) // x += y
			}
			st.bind(s.Lhs[i], t)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					ts := st.multiValue(vs.Values[0], len(vs.Names), inClosure)
					for i, name := range vs.Names {
						st.bind(name, ts[i])
					}
					continue
				}
				for i, v := range vs.Values {
					st.bind(vs.Names[i], st.expr(v, inClosure))
				}
			}
		}
	case *ast.RangeStmt:
		t := st.expr(s.X, inClosure)
		if s.Key != nil {
			kt := t
			if xt := st.f.Info.TypeOf(s.X); xt != nil {
				switch xt.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
					// The key is a positional index (or a string's byte
					// offset), not data derived from the elements.
					kt = tv{}
				}
			}
			st.bind(s.Key, kt)
		}
		if s.Value != nil {
			st.bind(s.Value, t)
		}
		st.scanStmt(s.Body, inClosure)
	case *ast.ReturnStmt:
		if !inClosure {
			if len(s.Results) == 0 {
				for i, v := range st.resObjs {
					if v != nil {
						st.joinResult(i, st.env[v])
					}
				}
			} else if len(s.Results) == len(st.res) {
				for i, e := range s.Results {
					st.joinResult(i, st.expr(e, inClosure))
				}
			} else if len(s.Results) == 1 && len(st.res) > 1 {
				ts := st.multiValue(s.Results[0], len(st.res), inClosure)
				for i, t := range ts {
					st.joinResult(i, t)
				}
			}
		} else {
			for _, e := range s.Results {
				st.expr(e, true)
			}
		}
	case *ast.IfStmt:
		st.scanStmt(s.Init, inClosure)
		st.expr(s.Cond, inClosure)
		st.scanStmt(s.Body, inClosure)
		st.scanStmt(s.Else, inClosure)
	case *ast.ForStmt:
		st.scanStmt(s.Init, inClosure)
		if s.Cond != nil {
			st.expr(s.Cond, inClosure)
		}
		st.scanStmt(s.Post, inClosure)
		st.scanStmt(s.Body, inClosure)
	case *ast.SwitchStmt:
		st.scanStmt(s.Init, inClosure)
		if s.Tag != nil {
			st.expr(s.Tag, inClosure)
		}
		st.scanStmt(s.Body, inClosure)
	case *ast.TypeSwitchStmt:
		st.scanStmt(s.Init, inClosure)
		st.scanStmt(s.Assign, inClosure)
		st.scanStmt(s.Body, inClosure)
	case *ast.SelectStmt:
		st.scanStmt(s.Body, inClosure)
	case *ast.CaseClause:
		for _, e := range s.List {
			st.expr(e, inClosure)
		}
		st.scanStmts(s.Body, inClosure)
	case *ast.CommClause:
		st.scanStmt(s.Comm, inClosure)
		st.scanStmts(s.Body, inClosure)
	case *ast.BlockStmt:
		st.scanStmts(s.List, inClosure)
	case *ast.LabeledStmt:
		st.scanStmt(s.Stmt, inClosure)
	case *ast.ExprStmt:
		st.expr(s.X, inClosure)
	case *ast.SendStmt:
		st.expr(s.Chan, inClosure)
		st.bind(s.Chan, st.expr(s.Value, inClosure))
	case *ast.GoStmt:
		st.expr(s.Call, inClosure)
	case *ast.DeferStmt:
		st.expr(s.Call, inClosure)
	case *ast.IncDecStmt:
		st.expr(s.X, inClosure)
	}
}

func (st *taintState) joinResult(i int, t tv) {
	old := st.res[i]
	nw := old.join(t)
	if nw.t != old.t || nw.src != old.src {
		st.res[i] = nw
		st.changed = true
	}
}

// multiValue evaluates a single expression in an n-value context.
func (st *taintState) multiValue(e ast.Expr, n int, inClosure bool) []tv {
	out := make([]tv, n)
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		ts := st.call(call, inClosure)
		for i := range out {
			if i < len(ts) {
				out[i] = ts[i]
			}
		}
		return out
	}
	// v, ok := m[k] / <-ch / x.(T): value taint in slot 0
	out[0] = st.expr(e, inClosure)
	return out
}

var errorType = types.Universe.Lookup("error").Type()

// expr computes the taint of e, recursing through subexpressions and
// processing any calls (including their sink checks) along the way.
// Expressions of type error are laundered: the violation lives at the sink
// that built the error, not at every later wrap of it.
func (st *taintState) expr(e ast.Expr, inClosure bool) tv {
	t := st.exprInner(e, inClosure)
	if t.t != 0 && e != nil {
		if et := st.f.Info.TypeOf(e); et != nil && types.Identical(et, errorType) {
			return tv{}
		}
	}
	return t
}

func (st *taintState) exprInner(e ast.Expr, inClosure bool) tv {
	switch e := e.(type) {
	case nil:
		return tv{}
	case *ast.Ident:
		t := st.env[st.f.Info.ObjectOf(e)]
		if desc, ok := typeSource(st.spec, st.f.Info.TypeOf(e)); ok {
			t = t.join(tv{t: TaintSource, src: desc})
		}
		return t
	case *ast.BasicLit:
		return tv{}
	case *ast.ParenExpr:
		return st.expr(e.X, inClosure)
	case *ast.SelectorExpr:
		base := st.expr(e.X, inClosure)
		// Field projection re-derives taint from the field's own type:
		// neither the whole value's source bit nor its param linkage
		// survives — `share.X` (a public evaluation point) is not a leak,
		// and a helper that formats `up.dev` does not turn its whole
		// parameter into a sink. Only the noise bit rides along (noised
		// data stays noised under projection), and a secret-typed field
		// re-introduces the source bit.
		t := tv{t: base.t & TaintNoise}
		if desc, ok := typeSource(st.spec, st.f.Info.TypeOf(e)); ok {
			t = t.join(tv{t: TaintSource, src: desc})
		}
		return t
	case *ast.StarExpr:
		return st.expr(e.X, inClosure)
	case *ast.UnaryExpr:
		return st.expr(e.X, inClosure)
	case *ast.BinaryExpr:
		t := st.expr(e.X, inClosure).join(st.expr(e.Y, inClosure))
		return t
	case *ast.IndexExpr:
		return st.expr(e.X, inClosure).join(st.expr(e.Index, inClosure))
	case *ast.IndexListExpr:
		return st.expr(e.X, inClosure)
	case *ast.SliceExpr:
		return st.expr(e.X, inClosure)
	case *ast.TypeAssertExpr:
		t := st.expr(e.X, inClosure)
		if desc, ok := typeSource(st.spec, st.f.Info.TypeOf(e)); ok {
			t = t.join(tv{t: TaintSource, src: desc})
		}
		return t
	case *ast.CompositeLit:
		var t tv
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.join(st.expr(kv.Value, inClosure))
			} else {
				t = t.join(st.expr(el, inClosure))
			}
		}
		return t
	case *ast.FuncLit:
		// Analyze the closure body inline: captured variables share the
		// enclosing env, so taint flows in and out of closures that run
		// in place (defer/go/immediately-invoked).
		st.scanStmts(e.Body.List, true)
		return tv{}
	case *ast.CallExpr:
		ts := st.call(e, inClosure)
		var t tv
		for _, rt := range ts {
			t = t.join(rt)
		}
		return t
	default:
		return tv{}
	}
}

// call evaluates one call expression: argument taints, spec classification
// (source/sanitizer/cleanser/sink), and summary instantiation for resolvable
// callees. It returns per-result taints.
func (st *taintState) call(call *ast.CallExpr, inClosure bool) []tv {
	// Receiver taint for method calls participates as input 0.
	var inputs []tv
	callee := CalleeOf(st.f.Info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if callee != nil {
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				inputs = append(inputs, st.expr(sel.X, inClosure))
			} else {
				st.expr(sel.X, inClosure)
			}
		} else {
			// Unresolvable method/field call: still evaluate the receiver
			// so nested calls inside it get their sink checks.
			st.expr(sel.X, inClosure)
		}
	}
	argStart := len(inputs)
	for _, a := range call.Args {
		inputs = append(inputs, st.expr(a, inClosure))
	}

	nres := 1
	if sig, ok := st.f.Info.TypeOf(call).(*types.Tuple); ok {
		nres = sig.Len()
	}

	// Type conversions propagate their operand.
	if tvv, ok := st.f.Info.Types[call.Fun]; ok && tvv.IsType() {
		var t tv
		for _, in := range inputs {
			t = t.join(in)
		}
		return []tv{t}
	}

	// Builtins: size queries are clean; append/copy propagate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.f.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "make", "new", "delete", "close", "min", "max":
				return []tv{{}}
			default:
				var t tv
				for _, in := range inputs {
					t = t.join(in)
				}
				return []tv{t}
			}
		}
	}

	if callee != nil && st.spec.Sanitizer != nil && st.spec.Sanitizer(callee, call) {
		return make([]tv, nres)
	}
	if callee != nil && st.spec.Cleanser != nil && st.spec.Cleanser(callee, call) {
		out := make([]tv, nres)
		for i := range out {
			out[i] = tv{t: TaintNoise}
		}
		return out
	}
	if callee != nil && st.spec.SourceCall != nil {
		if desc, ok := st.spec.SourceCall(callee, call); ok {
			out := make([]tv, nres)
			for i := range out {
				out[i] = tv{t: TaintSource, src: desc}
			}
			return out
		}
	}
	if callee != nil && st.spec.Sink != nil {
		if desc, ok := st.spec.Sink(callee, call); ok {
			for i := argStart; i < len(inputs); i++ {
				st.checkSink(inputs[i], desc, call.Args[i-argStart].Pos(), "")
			}
			// The sink consumed the data; its results (an error, a count)
			// are treated as clean so one leak is reported once, at the
			// first sink.
			return make([]tv, nres)
		}
	}

	if callee != nil {
		sum := st.prog.TaintSummary(st.spec, callee)
		// A parameter of the callee that reaches a sink inside it turns
		// this call site into a sink for the corresponding argument.
		for _, ps := range sum.Sinks {
			if ps.Param < len(inputs) {
				st.checkSink(inputs[ps.Param], ps.Sink, call.Pos(), callee.Name())
			}
		}
		out := make([]tv, nres)
		for i := range out {
			var rt Taint
			var src string
			if i < len(sum.Results) {
				rt = sum.Results[i]
				src = sum.ResultSrc[i]
			}
			t := tv{t: rt & (TaintSource | TaintNoise), src: src}
			for j := 0; j < len(inputs) && j < maxParams; j++ {
				if rt&ParamBit(j) != 0 {
					t = t.join(inputs[j])
				}
			}
			out[i] = t
		}
		return out
	}

	// Unresolvable call (function value, interface method without type
	// info): propagate the union of inputs.
	var t tv
	for _, in := range inputs {
		t = t.join(in)
	}
	out := make([]tv, nres)
	for i := range out {
		out[i] = t
	}
	return out
}

// checkSink records a violation when t is hot, and a param-sink when t
// carries param bits (the caller's caller may be the violator).
func (st *taintState) checkSink(t tv, sinkDesc string, pos token.Pos, via string) {
	desc := sinkDesc
	if via != "" && !strings.Contains(sinkDesc, " via ") {
		desc = sinkDesc + " via " + via
	}
	if t.t.hot() {
		v := Violation{Pos: pos, Source: t.src, Sink: desc}
		if !st.viol[v] {
			st.viol[v] = true
			st.changed = true
		}
	}
	if t.t&TaintNoise != 0 {
		return
	}
	for i := 0; i < len(st.paramObjs) && i < maxParams; i++ {
		if t.t&ParamBit(i) != 0 {
			ps := ParamSink{Param: i, Sink: desc, Pos: pos}
			if !st.sinks[ps] {
				st.sinks[ps] = true
				st.changed = true
			}
		}
	}
}
