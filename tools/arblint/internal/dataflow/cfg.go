// Control-flow graph over a function body's statement ASTs. The graph is
// built per function, with basic blocks holding statements in execution
// order and edges for the structured control flow Go has: if/else, for and
// range loops (with back edges), switch/type-switch/select, break, continue,
// labeled variants, and return. goto adds no edge — the query below
// under-approximates in its presence, and the repo bans goto-heavy style
// anyway. Function literals are opaque: a FuncLit body is not part of the
// enclosing function's graph (callers analyze closure bodies as separate
// functions).

package dataflow

import (
	"go/ast"
	"go/token"
)

// CFG is one function body's control-flow graph.
type CFG struct {
	blocks []*block
	// where maps each registered statement to its block and intra-block
	// index, for position queries.
	where map[ast.Stmt]blockRef

	reach map[[2]int]bool // memoized block reachability (strictly-after)
}

type block struct {
	idx   int
	stmts []ast.Stmt
	succs []*block
}

type blockRef struct {
	b   *block
	idx int
}

// builder state: the current block plus the break/continue targets of the
// enclosing loops and switches.
type cfgBuilder struct {
	g   *CFG
	cur *block

	// loop/switch context stacks for break/continue resolution.
	breaks    []*block
	continues []*block
	labels    map[string]*labelTargets
}

type labelTargets struct {
	brk, cont *block
}

// BuildCFG constructs the graph for body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{where: map[ast.Stmt]blockRef{}, reach: map[[2]int]bool{}}
	b := &cfgBuilder{g: g, labels: map[string]*labelTargets{}}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{idx: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func link(from, to *block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add records one statement in the current block.
func (b *cfgBuilder) add(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code after return/break; give it a detached block so
		// position queries still resolve.
		b.cur = b.newBlock()
	}
	b.g.where[s] = blockRef{b.cur, len(b.cur.stmts)}
	b.cur.stmts = append(b.cur.stmts, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s) // the condition evaluates in the current block
		cond := b.cur
		join := b.newBlock()
		b.cur = b.newBlock()
		link(cond, b.cur)
		b.stmtList(s.Body.List)
		link(b.cur, join)
		if s.Else != nil {
			b.cur = b.newBlock()
			link(cond, b.cur)
			b.stmt(s.Else, "")
			link(b.cur, join)
		} else {
			link(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		link(b.cur, head)
		b.cur = head
		b.add(s) // condition/loop header
		exit := b.newBlock()
		if s.Cond != nil {
			link(head, exit)
		}
		body := b.newBlock()
		link(head, body)
		b.cur = body
		b.pushLoop(exit, head, label)
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.stmt(s.Post, "")
		}
		b.popLoop(label)
		link(b.cur, head) // back edge
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		link(b.cur, head)
		b.cur = head
		b.add(s)
		exit := b.newBlock()
		link(head, exit)
		body := b.newBlock()
		link(head, body)
		b.cur = body
		b.pushLoop(exit, head, label)
		b.stmtList(s.Body.List)
		b.popLoop(label)
		link(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.add(s)
		head := b.cur
		exit := b.newBlock()
		b.pushLoop(exit, nil, label)
		var clauses []ast.Stmt
		var hasDefault bool
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		var prevBody *block // for fallthrough: link end of case N to start of case N+1
		for _, c := range clauses {
			caseBlk := b.newBlock()
			link(head, caseBlk)
			if prevBody != nil {
				link(prevBody, caseBlk)
			}
			b.cur = caseBlk
			switch c := c.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				b.stmtList(c.Body)
			case *ast.CommClause:
				if c.Comm != nil {
					b.stmt(c.Comm, "")
				} else {
					hasDefault = true
				}
				b.stmtList(c.Body)
			}
			prevBody = b.cur
			link(b.cur, exit)
		}
		if !hasDefault {
			// switch: no case may match; select: over-approximating the
			// same way only adds paths, which is safe for a may-query.
			link(head, exit)
		}
		b.popLoop(label)
		b.cur = exit

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.branchTo(s.Label, true)
		case token.CONTINUE:
			b.branchTo(s.Label, false)
		case token.GOTO:
			// no edge: may-precede under-approximates around goto
		}
		b.cur = nil // following statements are unreachable from here

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	default:
		// assignments, declarations, expression statements, go/defer, send,
		// inc/dec, empty: straight-line
		b.add(s)
	}
}

func (b *cfgBuilder) pushLoop(brk, cont *block, label string) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		b.labels[label] = &labelTargets{brk: brk, cont: cont}
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		delete(b.labels, label)
	}
}

func (b *cfgBuilder) branchTo(label *ast.Ident, isBreak bool) {
	var target *block
	if label != nil {
		if lt := b.labels[label.Name]; lt != nil {
			if isBreak {
				target = lt.brk
			} else {
				target = lt.cont
			}
		}
	} else {
		if isBreak {
			for i := len(b.breaks) - 1; i >= 0; i-- {
				if b.breaks[i] != nil {
					target = b.breaks[i]
					break
				}
			}
		} else {
			for i := len(b.continues) - 1; i >= 0; i-- {
				if b.continues[i] != nil {
					target = b.continues[i]
					break
				}
			}
		}
	}
	link(b.cur, target)
}

// refFor locates the innermost registered statement covering pos.
func (g *CFG) refFor(pos token.Pos) (blockRef, bool) {
	var best blockRef
	var bestSpan token.Pos = -1
	found := false
	for s, ref := range g.where {
		if s.Pos() <= pos && pos <= s.End() {
			span := s.End() - s.Pos()
			if !found || span < bestSpan {
				best, bestSpan, found = ref, span, true
			}
		}
	}
	return best, found
}

// blockReaches reports whether control leaving block a can ever enter block
// c (a path a → … → c through successor edges, possibly via back edges).
func (g *CFG) blockReaches(a, c *block) bool {
	key := [2]int{a.idx, c.idx}
	if v, ok := g.reach[key]; ok {
		return v
	}
	seen := make([]bool, len(g.blocks))
	queue := append([]*block(nil), a.succs...)
	ok := false
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b.idx] {
			continue
		}
		seen[b.idx] = true
		if b == c {
			ok = true
			break
		}
		queue = append(queue, b.succs...)
	}
	g.reach[key] = ok
	return ok
}

// MayPrecede reports whether the statement containing posA can execute
// before the statement containing posB on some path: same block with A
// strictly earlier, or a path from A's block to B's (which covers loops via
// back edges). Positions inside the same statement report false — within one
// statement Go evaluates the RHS before any store, so "write then call" can
// not happen there. Unlocatable positions report false.
func (g *CFG) MayPrecede(posA, posB token.Pos) bool {
	ra, oka := g.refFor(posA)
	rb, okb := g.refFor(posB)
	if !oka || !okb {
		return false
	}
	if ra.b == rb.b {
		if ra.idx < rb.idx {
			return true
		}
		if ra.idx == rb.idx {
			return false
		}
		// A after B in the same block: only via a cycle back to this block.
		return g.blockReaches(ra.b, rb.b)
	}
	return g.blockReaches(ra.b, rb.b)
}
