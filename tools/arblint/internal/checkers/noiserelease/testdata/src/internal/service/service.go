// Package service is noiserelease analyzer testdata: a release-boundary
// package (policy.ReleaseBoundaries matches it by path suffix) that leaks
// raw aggregates to output sinks directly, through a helper hop, and — in
// the clean cases — releases only noised or certified values.
package service

import (
	"encoding/json"
	"fmt"
	"io"

	ahe "arboretum/tools/arblint/internal/checkers/noiserelease/testdata/src/internal/ahe"
	mech "arboretum/tools/arblint/internal/checkers/noiserelease/testdata/src/internal/mechanism"
	runtime "arboretum/tools/arblint/internal/checkers/noiserelease/testdata/src/internal/runtime"
)

// LeakDirect decrypts and prints the raw sum with no noise in between.
func LeakDirect(key *ahe.PrivateKey, ct *ahe.Ciphertext) {
	raw, _ := key.Decrypt(ct)
	fmt.Println(raw) // want `raw aggregate from ahe.Decrypt reaches release sink fmt.Println`
}

// writeJSON is the helper the interprocedural hop goes through: its
// parameter reaches a JSON encoder, so calling it with tainted data is a
// release.
func writeJSON(w io.Writer, v int64) {
	_ = json.NewEncoder(w).Encode(v)
}

// LeakViaHelper launders the raw sum through writeJSON; the helper's
// summary makes the call site the sink.
func LeakViaHelper(w io.Writer, key *ahe.PrivateKey, ct *ahe.Ciphertext) {
	raw, _ := key.Decrypt(ct)
	writeJSON(w, raw) // want `raw aggregate from ahe.Decrypt reaches release sink json.Encode via writeJSON`
}

// LeakSum leaks through the other raw-aggregate producer and json.Marshal.
func LeakSum(cts []*ahe.Ciphertext) []byte {
	total := ahe.Sum(cts)
	out, _ := json.Marshal(total) // want `raw aggregate from ahe.Sum reaches release sink json.Marshal`
	return out
}

// ReleaseNoised mixes a mechanism noise draw into the raw sum before
// printing: the noise bit suppresses the source bit at the sink.
func ReleaseNoised(rng mech.Rand, key *ahe.PrivateKey, ct *ahe.Ciphertext) {
	raw, _ := key.Decrypt(ct)
	noised := raw + mech.Laplace(rng, 1)
	fmt.Println(noised)
}

// ReleaseCertified encodes only the sanitizer's output: runtime.Run is the
// certified release pipeline.
func ReleaseCertified(w io.Writer) error {
	res, err := runtime.Run("count")
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(res)
}

// Annotated is the recorded exception: the directive suppresses the leak on
// the next line.
func Annotated(key *ahe.PrivateKey, ct *ahe.Ciphertext) {
	raw, _ := key.Decrypt(ct)
	//arblint:ignore noiserelease recorded exception for analyzer testdata
	fmt.Println(raw)
}
