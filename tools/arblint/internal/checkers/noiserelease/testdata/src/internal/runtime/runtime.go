// Package runtime is noiserelease analyzer testdata: a stand-in exposing
// the certified release entry point the real internal/runtime exports. Its
// results are sanitized — the real Run executes the full certify → noise →
// release pipeline.
package runtime

// Result mirrors the released-result shape.
type Result struct {
	Value int64
}

// Run mirrors the certified release pipeline: its output is safe to encode.
func Run(query string) (*Result, error) {
	return &Result{}, nil
}
