// Package mechanism is noiserelease analyzer testdata: a stand-in exposing
// the noise-constructor names the real internal/mechanism exports. Calls to
// these are the cleansers that make a raw aggregate releasable.
package mechanism

// Rand mirrors the real sampler interface shape.
type Rand interface {
	Intn(n int) int
}

// Laplace mirrors the real noise constructor's name.
func Laplace(rng Rand, scale int64) int64 { return int64(rng.Intn(3)) - 1 }
