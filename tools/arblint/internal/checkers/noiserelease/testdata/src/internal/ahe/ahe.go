// Package ahe is noiserelease analyzer testdata: a stand-in exposing the
// raw-aggregate producer names the real internal/ahe exports. The policy
// table matches it by path suffix.
package ahe

// Ciphertext mirrors the real homomorphic ciphertext shape.
type Ciphertext struct {
	C int64
}

// PrivateKey mirrors the real decryption key shape.
type PrivateKey struct {
	D int64
}

// Decrypt mirrors the real raw-aggregate producer: its result is a
// pre-noise sum.
func (k *PrivateKey) Decrypt(ct *Ciphertext) (int64, error) {
	return ct.C - k.D, nil
}

// Sum mirrors the real homomorphic accumulator.
func Sum(cts []*Ciphertext) *Ciphertext {
	out := &Ciphertext{}
	for _, ct := range cts {
		out.C += ct.C
	}
	return out
}
