// Package noiserelease is the static complement of internal/privacy's
// runtime certifier: inside the release-boundary packages
// (policy.ReleaseBoundaries — the gateway's JSON encoding and the CLIs'
// stdout), every value that reaches an output sink must be free of
// raw-aggregate taint. A raw aggregate is the result of decrypting a
// homomorphic sum or reconstructing a secret-shared value
// (policy.RawAggregateSources); it becomes releasable by mixing in a
// mechanism.* noise draw (the cleansers) or by arriving through the
// runtime's certified Run (the sanitizer), which performs the full
// certify → noise → release pipeline. The taint engine's interprocedural
// summaries mean a raw sum laundered through any chain of helpers — a
// writeJSON wrapper, a response builder — is still caught at the call that
// hands it to the helper.
package noiserelease

import (
	"go/ast"
	"go/types"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/dataflow"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the noiserelease checker.
var Analyzer = &analysis.Analyzer{
	Name: "noiserelease",
	Doc:  "raw aggregates may not reach a release boundary without passing a noise mechanism",
	Run:  run,
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// spec is the taint domain, shared (and its summaries memoized) across
// every package of a driver run.
var spec = &dataflow.Spec{
	Key: "noiserelease",
	SourceCall: func(callee *types.Func, call *ast.CallExpr) (string, bool) {
		path := pkgPathOf(callee)
		if policy.FuncIn(policy.RawAggregateSources, path, callee.Name()) {
			return path[strings.LastIndex(path, "/")+1:] + "." + callee.Name(), true
		}
		return "", false
	},
	Sanitizer: func(callee *types.Func, call *ast.CallExpr) bool {
		return policy.FuncIn(policy.ReleaseSanitizers, pkgPathOf(callee), callee.Name())
	},
	Cleanser: func(callee *types.Func, call *ast.CallExpr) bool {
		mech := policy.Set{policy.NoiseSource: true}
		return mech.Matches(pkgPathOf(callee)) && policy.NoiseConstructors[callee.Name()]
	},
	Sink: func(callee *types.Func, call *ast.CallExpr) (string, bool) {
		path := pkgPathOf(callee)
		name := callee.Name()
		switch path {
		case "fmt":
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
				"Sprint", "Sprintf", "Sprintln":
				return "fmt." + name, true
			}
		case "encoding/json":
			switch name {
			case "Marshal", "MarshalIndent", "Encode": // Encode: (*json.Encoder).Encode
				return "json." + name, true
			}
		}
		return "", false
	},
}

func run(pass *analysis.Pass) error {
	if pass.Prog == nil || pass.TypesInfo == nil {
		return nil
	}
	if !policy.ReleaseBoundaries.Matches(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := pass.Prog.TaintSummary(spec, obj)
			for _, v := range sum.Violations {
				pass.Reportf(v.Pos,
					"raw aggregate from %s reaches release sink %s without passing a mechanism noise constructor: nothing leaves the platform un-noised (the runtime certifier's static complement)",
					v.Source, v.Sink)
			}
		}
	}
	return nil
}
