package noiserelease_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/noiserelease"
)

func TestReleaseBoundary(t *testing.T) {
	analysistest.Run(t, noiserelease.Analyzer, "internal/service")
}

// TestNonBoundaryClean runs the analyzer over the raw-aggregate producer
// itself: outside a release boundary nothing is flagged.
func TestNonBoundaryClean(t *testing.T) {
	analysistest.Run(t, noiserelease.Analyzer, "internal/ahe")
}
