package bigintalias_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/bigintalias"
)

func TestBigIntAlias(t *testing.T) {
	analysistest.Run(t, bigintalias.Analyzer, "internal/vsr", "internal/fixed")
}
