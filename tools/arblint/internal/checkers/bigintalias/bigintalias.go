// Package bigintalias flags mutable shared-memory values that cross an
// exported API boundary without a defensive copy. math/big values are
// mutable, so an exported method that returns an internal *big.Int field (or
// stores a caller's *big.Int into one) lets the caller and the data
// structure silently mutate each other — the aliasing bug class the ahe/bgv
// marshal fuzz tests catch only dynamically, promoted here to a static
// check. The same rule covers the pooled buffer types listed in
// policy.AliasProne (fixed.Slab, bgv.Poly): a pooled slab that escapes
// across an exported boundary is recycled into the next operation's scratch
// and corrupts the caller's value after the fact.
//
// Three shapes are flagged inside exported functions and methods of
// exported types, for *big.Int and for every alias-prone named type:
//
//	return t.f          // f is a *big.Int / alias-prone field of the
//	                    // receiver or a param
//	return t.fs[i]      // fs is a slice of such values
//	t.f = p             // p is such a parameter stored uncopied
//	T{f: p} / &T{f: p}  // composite literal capturing such a parameter
//
// The fix is new(big.Int).Set(...) (or an explicit slice copy); intentional
// ownership transfer must say so with //arblint:ignore bigintalias <reason>.
package bigintalias

import (
	"go/ast"
	"go/types"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the bigintalias checker.
var Analyzer = &analysis.Analyzer{
	Name: "bigintalias",
	Doc:  "require defensive copies when *big.Int or pooled alias-prone values cross exported API boundaries",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.TypesInfo == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedBoundary(pass, fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// exportedBoundary reports whether fd is reachable by other packages: an
// exported function, or an exported method on an exported named type.
func exportedBoundary(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return true
	}
	return named.Obj().Exported()
}

// isBigIntPtr reports whether t is *math/big.Int.
func isBigIntPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/big" && obj.Name() == "Int"
}

// aliasProneName returns the qualified name of t when it is a named type the
// policy.AliasProne table marks as aliasing pooled or recycled memory, and
// "" otherwise.
func aliasProneName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	if policy.FuncIn(policy.AliasProne, obj.Pkg().Path(), obj.Name()) {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}

// sharedKind classifies a type under the boundary-crossing rule: "*big.Int",
// the alias-prone type's qualified name, or "" when the rule does not apply.
func sharedKind(t types.Type) string {
	if isBigIntPtr(t) {
		return "*big.Int"
	}
	return aliasProneName(t)
}

// boundaryObjs collects the function's receiver and parameter objects: the
// values the caller shares with the callee.
func boundaryObjs(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	objs := map[types.Object]bool{}
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return objs
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	boundary := boundaryObjs(pass, fd)

	// fieldAlias returns a description and the shared kind when expr
	// evaluates to an internal *big.Int or alias-prone value reachable
	// through a boundary object's field.
	fieldAlias := func(expr ast.Expr) (string, string, bool) {
		if idx, ok := expr.(*ast.IndexExpr); ok {
			expr = idx.X
		}
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return "", "", false
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return "", "", false
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || !boundary[pass.ObjectOf(base)] {
			return "", "", false
		}
		ft := selection.Obj().Type()
		if kind := sharedKind(ft); kind != "" {
			return base.Name + "." + sel.Sel.Name, kind, true
		}
		if slice, ok := ft.(*types.Slice); ok {
			if kind := sharedKind(slice.Elem()); kind != "" {
				return base.Name + "." + sel.Sel.Name + "[...]", kind, true
			}
		}
		return "", "", false
	}

	// paramShared reports whether expr is a bare parameter (or receiver)
	// ident of a shared kind, and which kind.
	paramShared := func(expr ast.Expr) (string, string, bool) {
		id, ok := expr.(*ast.Ident)
		if !ok {
			return "", "", false
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !boundary[obj] {
			return "", "", false
		}
		kind := sharedKind(obj.Type())
		if kind == "" {
			return "", "", false
		}
		return id.Name, kind, true
	}

	// fix names the idiomatic defensive copy for a kind in diagnostics. The
	// *big.Int wording is load-bearing: the vsr testdata pins it.
	fix := func(kind, what string) string {
		if kind == "*big.Int" {
			return "new(big.Int).Set(" + what + ")"
		}
		return "an explicit copy of " + what
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures may legitimately capture internal state; their
			// escape is out of scope for this heuristic.
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if sharedKind(pass.TypeOf(res)) == "" {
					continue
				}
				if desc, kind, ok := fieldAlias(res); ok {
					pass.Reportf(res.Pos(),
						"%s returns internal %s %s without copy: use %s so callers cannot mutate internal state",
						fd.Name.Name, kind, desc, fix(kind, "..."))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				desc, _, ok := fieldAlias(lhs)
				if !ok {
					continue
				}
				if pname, kind, ok := paramShared(n.Rhs[i]); ok {
					pass.Reportf(n.Rhs[i].Pos(),
						"%s stores caller-owned %s parameter %s into %s without copy: use %s",
						fd.Name.Name, kind, pname, desc, fix(kind, pname))
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if pname, kind, ok := paramShared(kv.Value); ok {
					pass.Reportf(kv.Value.Pos(),
						"%s captures caller-owned %s parameter %s in a composite literal without copy: use %s",
						fd.Name.Name, kind, pname, fix(kind, pname))
				}
			}
		}
		return true
	})
}
