// Package bigintalias flags *big.Int values that cross an exported API
// boundary without a defensive copy. math/big values are mutable, so an
// exported method that returns an internal *big.Int field (or stores a
// caller's *big.Int into one) lets the caller and the data structure
// silently mutate each other — the aliasing bug class the ahe/bgv marshal
// fuzz tests catch only dynamically, promoted here to a static check.
//
// Three shapes are flagged inside exported functions and methods of
// exported types:
//
//	return t.f          // f is a *big.Int field of the receiver or a param
//	return t.fs[i]      // fs is a []*big.Int field
//	t.f = p             // p is a *big.Int parameter stored uncopied
//	T{f: p} / &T{f: p}  // composite literal capturing a *big.Int parameter
//
// The fix is new(big.Int).Set(...); intentional ownership transfer must say
// so with //arblint:ignore bigintalias <reason>.
package bigintalias

import (
	"go/ast"
	"go/types"

	"arboretum/tools/arblint/internal/analysis"
)

// Analyzer is the bigintalias checker.
var Analyzer = &analysis.Analyzer{
	Name: "bigintalias",
	Doc:  "require defensive copies when *big.Int values cross exported API boundaries",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.TypesInfo == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedBoundary(pass, fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// exportedBoundary reports whether fd is reachable by other packages: an
// exported function, or an exported method on an exported named type.
func exportedBoundary(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return true
	}
	return named.Obj().Exported()
}

// isBigIntPtr reports whether t is *math/big.Int.
func isBigIntPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/big" && obj.Name() == "Int"
}

// boundaryObjs collects the function's receiver and parameter objects: the
// values the caller shares with the callee.
func boundaryObjs(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	objs := map[types.Object]bool{}
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return objs
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	boundary := boundaryObjs(pass, fd)

	// fieldAlias returns a description when expr evaluates to an internal
	// *big.Int reachable through a boundary object's field.
	fieldAlias := func(expr ast.Expr) (string, bool) {
		if idx, ok := expr.(*ast.IndexExpr); ok {
			expr = idx.X
		}
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return "", false
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || !boundary[pass.ObjectOf(base)] {
			return "", false
		}
		ft := selection.Obj().Type()
		if isBigIntPtr(ft) {
			return base.Name + "." + sel.Sel.Name, true
		}
		if slice, ok := ft.(*types.Slice); ok && isBigIntPtr(slice.Elem()) {
			return base.Name + "." + sel.Sel.Name + "[...]", true
		}
		return "", false
	}

	// paramBigInt reports whether expr is a bare *big.Int parameter ident.
	paramBigInt := func(expr ast.Expr) (string, bool) {
		id, ok := expr.(*ast.Ident)
		if !ok {
			return "", false
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !boundary[obj] || !isBigIntPtr(obj.Type()) {
			return "", false
		}
		return id.Name, true
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures may legitimately capture internal state; their
			// escape is out of scope for this heuristic.
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isBigIntPtr(pass.TypeOf(res)) {
					if desc, ok := fieldAlias(res); ok {
						pass.Reportf(res.Pos(),
							"%s returns internal *big.Int %s without copy: use new(big.Int).Set(...) so callers cannot mutate internal state",
							fd.Name.Name, desc)
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				desc, ok := fieldAlias(lhs)
				if !ok {
					continue
				}
				if pname, ok := paramBigInt(n.Rhs[i]); ok {
					pass.Reportf(n.Rhs[i].Pos(),
						"%s stores caller-owned *big.Int parameter %s into %s without copy: use new(big.Int).Set(%s)",
						fd.Name.Name, pname, desc, pname)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if pname, ok := paramBigInt(kv.Value); ok && isBigIntPtr(pass.TypeOf(kv.Value)) {
					pass.Reportf(kv.Value.Pos(),
						"%s captures caller-owned *big.Int parameter %s in a composite literal without copy: use new(big.Int).Set(%s)",
						fd.Name.Name, pname, pname)
				}
			}
		}
		return true
	})
}
