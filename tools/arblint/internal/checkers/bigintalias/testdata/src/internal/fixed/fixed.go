// Package fixed is bigintalias testdata for the policy.AliasProne rule: a
// pooled Slab type whose values recycle through a pool, seeded with every
// boundary-crossing shape the analyzer must flag — and the compliant
// copy/annotated variants it must not.
package fixed

// Slab stands in for the real internal/fixed.Slab: a pooled buffer the
// policy table lists in AliasProne.
type Slab []uint64

// Buf owns pooled slabs.
type Buf struct {
	Scratch Slab
	Rows    []Slab
}

// LeakScratch returns the pooled scratch slab itself.
func (b *Buf) LeakScratch() Slab {
	return b.Scratch // want `LeakScratch returns internal fixed\.Slab b\.Scratch without copy`
}

// LeakRow returns one element of the pooled row set.
func (b *Buf) LeakRow(i int) Slab {
	return b.Rows[i] // want `LeakRow returns internal fixed\.Slab b\.Rows\[\.\.\.\] without copy`
}

// StoreScratch adopts the caller's slab without copying.
func (b *Buf) StoreScratch(s Slab) {
	b.Scratch = s // want `StoreScratch stores caller-owned fixed\.Slab parameter s into b\.Scratch without copy`
}

// Wrap captures the caller's slab in a composite literal.
func Wrap(s Slab) *Buf {
	return &Buf{Scratch: s} // want `Wrap captures caller-owned fixed\.Slab parameter s in a composite literal without copy`
}

// CopyScratch is the compliant version: an explicit copy.
func (b *Buf) CopyScratch() Slab {
	out := make(Slab, len(b.Scratch))
	copy(out, b.Scratch)
	return out
}

// Adopt is the annotated ownership transfer: the directive suppresses the
// store on the next line.
func (b *Buf) Adopt(s Slab) {
	//arblint:ignore bigintalias caller transfers slab ownership by documented contract in analyzer testdata
	b.Scratch = s
}

// leakInternal is unexported; boundaries below export are out of scope.
func leakInternal(b *Buf) Slab {
	return b.Scratch
}
