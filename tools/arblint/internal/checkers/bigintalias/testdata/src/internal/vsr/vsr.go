// Package vsr is bigintalias analyzer testdata: exported boundaries that
// leak or capture mutable *big.Int values.
package vsr

import "math/big"

// Dealing holds internal commitments.
type Dealing struct {
	Commitments []*big.Int
	Secret      *big.Int
}

// First returns an aliased slice element.
func (d *Dealing) First() *big.Int {
	return d.Commitments[0] // want `First returns internal \*big\.Int d\.Commitments\[\.\.\.\] without copy`
}

// SecretVal returns the field directly.
func (d *Dealing) SecretVal() *big.Int {
	return d.Secret // want `SecretVal returns internal \*big\.Int d\.Secret without copy`
}

// SecretCopy is the sound version and is not flagged.
func (d *Dealing) SecretCopy() *big.Int {
	return new(big.Int).Set(d.Secret)
}

// SetSecret stores a caller-owned pointer into the receiver.
func (d *Dealing) SetSecret(v *big.Int) {
	d.Secret = v // want `SetSecret stores caller-owned \*big\.Int parameter v into d\.Secret without copy`
}

// NewDealing captures the parameter in a composite literal.
func NewDealing(s *big.Int) *Dealing {
	return &Dealing{Secret: s} // want `NewDealing captures caller-owned \*big\.Int parameter s in a composite literal without copy`
}

// Adopt is the annotated ownership transfer: the directive suppresses the
// capture on the next line.
func Adopt(s *big.Int) *Dealing {
	//arblint:ignore bigintalias caller transfers ownership by documented contract in analyzer testdata
	return &Dealing{Secret: s}
}

// unexported boundaries are out of scope for the heuristic.
func internalReturn(d *Dealing) *big.Int {
	return d.Secret
}

// Keep references internalReturn so the package compiles without unused
// symbols.
var Keep = internalReturn
