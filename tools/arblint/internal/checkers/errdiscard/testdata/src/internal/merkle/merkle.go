// Package merkle is errdiscard analyzer testdata: discarded errors from
// hash, crypto/rand, and marshal APIs.
package merkle

import (
	"crypto/rand"
	"crypto/sha256"
)

// Blob is a marshalable payload.
type Blob struct{}

// MarshalBinary implements encoding.BinaryMarshaler.
func (Blob) MarshalBinary() ([]byte, error) { return nil, nil }

// Digest drops the hash error via an expression statement.
func Digest(data []byte) []byte {
	h := sha256.New()
	h.Write(data) // want `result of Hash\.Write dropped`
	return h.Sum(nil)
}

// Key drops the entropy error via a blank assign.
func Key() []byte {
	buf := make([]byte, 32)
	_, _ = rand.Read(buf) // want `error from rand\.Read assigned to _`
	return buf
}

// Wire drops a marshal error.
func Wire(b Blob) {
	b.MarshalBinary() // want `result of MarshalBinary dropped`
}

// DigestChecked propagates properly and is not flagged.
func DigestChecked(data []byte) ([]byte, error) {
	buf := make([]byte, 32)
	if _, err := rand.Read(buf); err != nil {
		return nil, err
	}
	h := sha256.New()
	if _, err := h.Write(data); err != nil {
		return nil, err
	}
	return h.Sum(buf), nil
}

// DigestAnnotated documents the discard: the directive suppresses the write
// on the next line.
func DigestAnnotated(data []byte) []byte {
	h := sha256.New()
	//arblint:ignore errdiscard hash.Hash.Write is documented to never return an error
	h.Write(data)
	return h.Sum(nil)
}
