// Package errdiscard flags discarded error returns from the APIs where a
// swallowed error means silently wrong cryptography: the crypto, marshal,
// MPC, and pool packages in policy.MustCheckErrors, plus the marshal method
// names in policy.MarshalMethods wherever they appear, plus crypto/rand and
// hash.Hash call sites in the standard library. Two shapes are flagged:
//
//	_ = pk.Add(a, b)        // blank-assigned error result
//	v, _ := sk.Decrypt(ct)  // blank in a multi-assign
//	ct.MarshalBinary()      // expression statement dropping every result
//
// Library code must wrap and propagate instead. The rare sound discard
// (e.g. hash.Hash.Write, documented to never fail) carries an
// //arblint:ignore errdiscard <reason> annotation.
package errdiscard

import (
	"go/ast"
	"go/types"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the errdiscard checker.
var Analyzer = &analysis.Analyzer{
	Name: "errdiscard",
	Doc:  "forbid discarding error returns from crypto, marshal, MPC, and pool APIs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.TypesInfo == nil {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkExprStmt(pass, call)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// covered returns the callee's description when the call is one whose error
// must be checked.
func covered(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		recv = fun.X
	default:
		return "", false
	}
	fn, ok := pass.ObjectOf(id).(*types.Func)
	if !ok {
		return "", false
	}
	if policy.MarshalMethods[fn.Name()] {
		return fn.Name(), true
	}
	if pkg := fn.Pkg(); inCovered(pass, pkg) {
		return pkg.Name() + "." + fn.Name(), true
	}
	// Methods promoted from embedded interfaces (hash.Hash.Write comes
	// from io.Writer) carry the embedding source's package; fall back to
	// the receiver's static type.
	if recv != nil {
		t := pass.TypeOf(recv)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && inCovered(pass, named.Obj().Pkg()) {
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	return "", false
}

// inCovered reports whether pkg is a MustCheckErrors package other than the
// one being analyzed: calls within the defining package are its own
// business, the boundary contract applies to consumers.
func inCovered(pass *analysis.Pass, pkg *types.Package) bool {
	if pkg == nil || (pass.Pkg != nil && pkg == pass.Pkg) {
		return false
	}
	return policy.MustCheckErrors.Matches(pkg.Path())
}

// errorPositions returns the indices of error-typed results of the call.
func errorPositions(pass *analysis.Pass, call *ast.CallExpr) []int {
	t := pass.TypeOf(call)
	if t == nil {
		return nil
	}
	var out []int
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				out = append(out, i)
			}
		}
	default:
		if isError(t) {
			out = append(out, 0)
		}
	}
	return out
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func checkExprStmt(pass *analysis.Pass, call *ast.CallExpr) {
	if len(errorPositions(pass, call)) == 0 {
		return
	}
	if callee, ok := covered(pass, call); ok {
		pass.Reportf(call.Pos(), "result of %s dropped: check the error (wrap and propagate, or annotate why the discard is sound)", callee)
	}
}

func checkAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	report := func(call *ast.CallExpr) {
		if callee, ok := covered(pass, call); ok {
			pass.Reportf(call.Pos(), "error from %s assigned to _: check it (wrap and propagate, or annotate why the discard is sound)", callee)
		}
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// v, _ := f() — one call, tuple result.
		call, ok := n.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		for _, pos := range errorPositions(pass, call) {
			if pos < len(n.Lhs) && isBlank(n.Lhs[pos]) {
				report(call)
				return
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) || !isBlank(n.Lhs[i]) {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		for _, pos := range errorPositions(pass, call) {
			if pos == 0 {
				report(call)
				break
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
