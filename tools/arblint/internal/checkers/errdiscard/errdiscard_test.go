package errdiscard_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/errdiscard"
)

func TestErrDiscard(t *testing.T) {
	analysistest.Run(t, errdiscard.Analyzer, "internal/merkle")
}
