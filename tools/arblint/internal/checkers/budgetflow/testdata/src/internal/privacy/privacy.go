// Package privacy is budgetflow analyzer testdata: an approved caller (by
// path suffix) whose direct noise draws are the budget-accounted path and
// produce no findings.
package privacy

import mech "arboretum/tools/arblint/internal/checkers/budgetflow/testdata/src/internal/mechanism"

// ChargeAndDraw stands in for the certification layer: it may call noise
// constructors directly.
func ChargeAndDraw(rng mech.Rand) int64 {
	return mech.Laplace(rng, 7)
}
