// Package eval is budgetflow analyzer testdata: a package outside the
// budget-approved set that samples DP noise directly.
package eval

import mech "arboretum/tools/arblint/internal/checkers/budgetflow/testdata/src/internal/mechanism"

// Leak draws noise nobody debited from the privacy budget.
func Leak(rng mech.Rand) int64 {
	return mech.Laplace(rng, 3) // want `call to mech.Laplace outside budget-accounted packages`
}

// LeakTopK draws through a different constructor.
func LeakTopK(rng mech.Rand, scores []int64) []int {
	return mech.TopK(rng, scores, 2) // want `call to mech.TopK outside budget-accounted packages`
}

// Harmless calls a non-constructor and is not flagged.
func Harmless() string {
	return mech.Describe()
}

// Annotated is the recorded exception: the directive suppresses the call on
// the next line.
func Annotated(rng mech.Rand) int64 {
	//arblint:ignore budgetflow exception with a recorded reason for analyzer testdata
	return mech.Gumbel(rng, 3)
}
