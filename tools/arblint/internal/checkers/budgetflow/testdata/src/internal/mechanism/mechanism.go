// Package mechanism is budgetflow analyzer testdata: a stand-in exposing
// the noise-constructor names the real internal/mechanism exports. The
// policy table matches it by path suffix.
package mechanism

// Rand mirrors the real sampler interface shape.
type Rand interface {
	Intn(n int) int
}

// Laplace mirrors the real noise constructor's name.
func Laplace(rng Rand, scale int64) int64 { return int64(rng.Intn(1)) + scale }

// Gumbel mirrors the real noise constructor's name.
func Gumbel(rng Rand, scale int64) int64 { return int64(rng.Intn(1)) + scale }

// TopK mirrors the real noise constructor's name.
func TopK(rng Rand, scores []int64, k int) []int { return make([]int, k) }

// Describe is not a noise constructor and may be called from anywhere.
func Describe() string { return "mechanism testdata" }
