// Package budgetflow enforces the certification discipline of §4.2: every
// differentially private noise draw must be paid for through
// internal/privacy's budget accounting. Concretely, the internal/mechanism
// noise constructors (policy.NoiseConstructors) may only be called from the
// approved packages (policy.BudgetApprovedCallers) — the mechanism package
// itself, the privacy/certification layer, and the runtime, which charges
// the query's certificate against the deployment budget before any vignette
// executes. A vignette, example, or eval harness that sampled noise directly
// would release privacy loss nobody debited; budgetflow turns that into a
// compile-gate failure instead of a silent leak.
package budgetflow

import (
	"go/ast"
	"go/types"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the budgetflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "budgetflow",
	Doc:  "restrict internal/mechanism noise constructors to budget-accounted call sites",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if policy.BudgetApprovedCallers.Matches(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !policy.NoiseConstructors[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			mech := policy.Set{policy.NoiseSource: true}
			if !mech.Matches(pn.Imported().Path()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s outside budget-accounted packages: DP noise must be drawn via internal/privacy certification (§4.2), not directly from %s",
				id.Name, sel.Sel.Name, policy.NoiseSource)
			return true
		})
	}
	return nil
}
