package budgetflow_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/budgetflow"
)

func TestUnapprovedCaller(t *testing.T) {
	analysistest.Run(t, budgetflow.Analyzer, "internal/eval")
}

func TestApprovedCallerClean(t *testing.T) {
	analysistest.Run(t, budgetflow.Analyzer, "internal/privacy")
}
