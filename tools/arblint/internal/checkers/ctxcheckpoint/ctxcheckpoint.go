// Package ctxcheckpoint locks in PR 8's deadline work: the runtime's
// unbounded hot loops — the ingest shard driver and the interpreter's
// vignette and statement loops, listed in policy.CheckpointFuncs — must
// contain a cancellation checkpoint, so a canceled or deadline-exceeded job
// stops at the next batch/vignette/statement boundary instead of running to
// completion while the gateway has already abandoned it. A checkpoint is a
// select on ctx.Done(), a ctx.Err() poll, or a call to a function that
// performs one (the Deployment.checkpoint helper counts through the
// interprocedural registry, however many hops deep). The analyzer also
// requires every condition-less `for {}` loop in a listed package to carry
// a checkpoint — a loop with no exit condition and no cancellation poll can
// outlive every deadline the service hands out.
package ctxcheckpoint

import (
	"go/ast"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/dataflow"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the ctxcheckpoint checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheckpoint",
	Doc:  "unbounded runtime loops must contain a cancellation checkpoint",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.TypesInfo == nil {
		return nil
	}
	var required []string
	for key, fns := range policy.CheckpointFuncs {
		probe := policy.Set{key: true}
		if probe.Matches(pass.PkgPath) {
			required = fns
			break
		}
	}
	if required == nil {
		return nil
	}

	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[declKey(fd)] = fd
			}
		}
	}

	for _, req := range required {
		fd, ok := decls[req]
		if !ok {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"policy.CheckpointFuncs requires %s in this package but it does not exist: update the function or the policy table together",
				req)
			continue
		}
		loops := collectLoops(fd.Body)
		if len(loops) == 0 {
			pass.Reportf(fd.Name.Pos(),
				"%s is listed in policy.CheckpointFuncs but contains no loop: update the policy table with the new hot-loop location", req)
			continue
		}
		checkpointed := false
		for _, loop := range loops {
			if loopHasCheckpoint(pass, loopBody(loop)) {
				checkpointed = true
				break
			}
		}
		if !checkpointed {
			pass.Reportf(loops[0].Pos(),
				"%s has no loop with a cancellation checkpoint: a canceled job would run this path to completion past its deadline (add a ctx.Done select, a ctx.Err poll, or a checkpoint call)", req)
		}
	}

	// Package-wide rule: a `for {}` with no condition must checkpoint.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !loopHasCheckpoint(pass, loop.Body) {
				pass.Reportf(loop.Pos(),
					"condition-less loop without a cancellation checkpoint: nothing bounds it when the job's context is canceled")
			}
			return true
		})
	}
	return nil
}

// declKey renders a FuncDecl as the policy table's "Type.method" (or plain
// "func") notation.
func declKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// collectLoops gathers every for/range statement in body, including nested
// ones but not those inside function literals.
func collectLoops(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, n.(ast.Stmt))
		}
		return true
	})
	return out
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// loopHasCheckpoint reports whether body contains a cancellation
// checkpoint: a receive from a Done() channel (in a select or bare), an
// Err() poll, or a call into a function that transitively performs one.
func loopHasCheckpoint(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCtxCall(call) {
			found = true
			return false
		}
		if pass.Prog != nil {
			if callee := dataflow.CalleeOf(pass.TypesInfo, call); callee != nil {
				if pass.Prog.FuncMatches(callee, "ctxcheckpoint", funcChecksCtx) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isCtxCall matches the syntactic checkpoint forms: x.Done() (whose result
// is received from) and x.Err(). Matching is by method name — the false
// positives this could admit only credit a checkpoint, never invent a
// finding, and the runtime spells these exclusively on contexts.
func isCtxCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "Done" || sel.Sel.Name == "Err"
}

// funcChecksCtx is the registry predicate: does this function's own body
// contain a syntactic checkpoint?
func funcChecksCtx(f *dataflow.Func) bool {
	found := false
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isCtxCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}
