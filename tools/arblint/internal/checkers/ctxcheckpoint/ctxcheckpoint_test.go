package ctxcheckpoint_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/ctxcheckpoint"
)

func TestCheckpointLoops(t *testing.T) {
	analysistest.Run(t, ctxcheckpoint.Analyzer, "internal/runtime")
}
