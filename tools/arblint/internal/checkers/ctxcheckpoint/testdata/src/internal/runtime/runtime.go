// Package runtime is ctxcheckpoint analyzer testdata: it defines the exact
// hot-loop functions policy.CheckpointFuncs lists for internal/runtime (the
// policy table matches this package by path suffix). runShard checkpoints
// through a helper hop, runVignette polls ctx.Err directly, and run — the
// seeded violation — loops with no checkpoint at all.
package runtime

import "context"

type deployment struct {
	ctx context.Context
}

// checkpoint is the helper the interprocedural hop goes through: the
// registry sees its ctx.Done select and credits callers.
func (d *deployment) checkpoint() error {
	select {
	case <-d.ctx.Done():
		return d.ctx.Err()
	default:
		return nil
	}
}

type ingestSpec struct {
	dep     *deployment
	batches [][]int64
}

// runShard is listed in policy.CheckpointFuncs; its loop checkpoints via
// the helper, one call hop away.
func (sp *ingestSpec) runShard(shard int) (int64, error) {
	var total int64
	for _, batch := range sp.batches {
		if err := sp.dep.checkpoint(); err != nil {
			return 0, err
		}
		for _, v := range batch {
			total += v
		}
	}
	return total, nil
}

type interp struct {
	ctx   context.Context
	steps []int64
}

// runVignette is listed in policy.CheckpointFuncs; its loop polls ctx.Err
// directly.
func (ip *interp) runVignette(seq int) int64 {
	var acc int64
	for _, s := range ip.steps {
		if ip.ctx.Err() != nil {
			return acc
		}
		acc += s
	}
	return acc
}

// run is listed in policy.CheckpointFuncs but its loop never observes
// cancellation: the seeded violation.
func (ip *interp) run() int64 {
	var acc int64
	for _, s := range ip.steps { // want `interp.run has no loop with a cancellation checkpoint`
		acc += s
	}
	return acc
}

// spin is the package-wide rule's seeded violation: a condition-less loop
// with no checkpoint.
func spin(ch chan int) int {
	for { // want `condition-less loop without a cancellation checkpoint`
		v := <-ch
		if v > 0 {
			return v
		}
	}
}

// pump checkpoints its condition-less loop and is clean.
func pump(ctx context.Context, ch chan int) int {
	for {
		select {
		case <-ctx.Done():
			return 0
		case v := <-ch:
			if v > 0 {
				return v
			}
		}
	}
}

// drain is the recorded exception: the directive suppresses the finding.
func drain(ch chan int) (total int) {
	//arblint:ignore ctxcheckpoint recorded exception for analyzer testdata
	for {
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}
