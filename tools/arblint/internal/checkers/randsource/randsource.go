// Package randsource enforces Arboretum's randomness-source policy:
//
//   - In secrecy-critical packages (policy.SecrecyCritical) — the crypto
//     primitives, sortition, the DP mechanisms, and the runtime — math/rand
//     must not be imported or referenced: its stream is predictable from a
//     63-bit seed, which would let an observer reconstruct keys, shares,
//     sortition tickets, or noise. Deliberately deterministic simulation
//     draws are annotated with //arblint:ignore randsource <reason>.
//
//   - In benchmark files of packages whose kernel timings are tracked
//     across commits (policy.DeterministicBench), crypto/rand must not be
//     used: benchmark inputs must be identical run to run so
//     BENCH_kernels.json deltas measure the code, not the inputs. Those
//     benchmarks draw from internal/benchrand instead.
//
// The analyzer inspects _test.go files too (syntactically), since both
// rules apply to test code.
package randsource

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the randsource checker.
var Analyzer = &analysis.Analyzer{
	Name:      "randsource",
	Doc:       "ban math/rand in secrecy-critical packages and crypto/rand in determinism-required benchmarks",
	TestFiles: true,
	Run:       run,
}

var mathRandPaths = map[string]bool{"math/rand": true, "math/rand/v2": true}

func run(pass *analysis.Pass) error {
	secrecyKey := policy.SecrecyCritical.Match(pass.PkgPath)
	// Simulation machinery (the fault-injection engine) is secrecy-adjacent
	// but deliberately deterministic: its math/rand draws are seeded replay
	// state, not secrets, so the ban is lifted package-wide.
	if policy.SimulationExempt.Matches(pass.PkgPath) {
		secrecyKey = ""
	}
	benchDet := policy.DeterministicBench.Matches(pass.PkgPath)
	for _, f := range pass.AllFiles() {
		checkFile(pass, f, secrecyKey, benchDet)
	}
	return nil
}

// isBenchFile reports whether the file is benchmark-only by naming
// convention (bench_test.go / *_bench_test.go).
func isBenchFile(name string) bool {
	base := name
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base == "bench_test.go" || strings.HasSuffix(base, "_bench_test.go")
}

func checkFile(pass *analysis.Pass, f *ast.File, secrecyKey string, benchDet bool) {
	filename := pass.Fset.Position(f.Pos()).Filename
	// localNames maps file-local package qualifiers to the banned import
	// they refer to, the fallback used for files without type information.
	localNames := map[string]string{}
	for _, spec := range f.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		switch {
		case mathRandPaths[path] && secrecyKey != "":
			pass.Reportf(spec.Pos(), "import of %s in secrecy-critical package (%s): use crypto/rand, or annotate deterministic simulation draws", path, secrecyKey)
			localNames[importName(spec, path)] = path
		case path == "crypto/rand" && benchDet && isBenchFile(filename):
			pass.Reportf(spec.Pos(), "import of crypto/rand in benchmark file of determinism-required package: use internal/benchrand so tracked kernel timings see identical inputs")
			localNames[importName(spec, path)] = path
		}
	}
	if len(localNames) == 0 {
		return
	}
	// Flag every qualified reference to the banned import, so each use
	// site is annotated (or fixed) individually.
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path, ok := refersToBanned(pass, id, localNames)
		if !ok {
			return true
		}
		pass.Reportf(sel.Pos(), "use of %s.%s (%s banned here)", id.Name, sel.Sel.Name, path)
		return true
	})
}

// importName returns the qualifier an import is referred to by.
func importName(spec *ast.ImportSpec, path string) string {
	if spec.Name != nil {
		return spec.Name.Name
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// refersToBanned reports whether ident is a package qualifier for one of the
// banned imports: via type information when available, by import-name match
// in parsed-only test files.
func refersToBanned(pass *analysis.Pass, id *ast.Ident, localNames map[string]string) (string, bool) {
	if obj := pass.ObjectOf(id); obj != nil {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return "", false
		}
		path := pn.Imported().Path()
		for _, banned := range localNames {
			if banned == path {
				return path, true
			}
		}
		return "", false
	}
	path, ok := localNames[id.Name]
	return path, ok
}
