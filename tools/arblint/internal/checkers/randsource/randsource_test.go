package randsource_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/randsource"
)

func TestSecrecyCritical(t *testing.T) {
	analysistest.Run(t, randsource.Analyzer, "internal/shamir")
}

func TestDeterministicBench(t *testing.T) {
	analysistest.Run(t, randsource.Analyzer, "internal/ahe")
}

// TestSimulationExempt pins the fault-injection carve-out: internal/faults is
// SecrecyCritical by path but SimulationExempt, so its seeded math/rand draws
// must produce zero findings. The testdata file has no // want comments;
// analysistest fails on any unexpected diagnostic, so this test breaks if the
// exemption is ever dropped from the policy table.
func TestSimulationExempt(t *testing.T) {
	analysistest.Run(t, randsource.Analyzer, "internal/faults")
}
