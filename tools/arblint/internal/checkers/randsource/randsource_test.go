package randsource_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/randsource"
)

func TestSecrecyCritical(t *testing.T) {
	analysistest.Run(t, randsource.Analyzer, "internal/shamir")
}

func TestDeterministicBench(t *testing.T) {
	analysistest.Run(t, randsource.Analyzer, "internal/ahe")
}
