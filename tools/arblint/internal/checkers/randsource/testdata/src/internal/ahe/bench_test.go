package ahe

import (
	"crypto/rand" // want `import of crypto/rand in benchmark file of determinism-required package`
	"testing"
)

func BenchmarkDraw(b *testing.B) {
	buf := make([]byte, 8)
	for i := 0; i < b.N; i++ {
		if _, err := rand.Read(buf); err != nil { // want `use of rand.Read \(crypto/rand banned here\)`
			b.Fatal(err)
		}
	}
}

func BenchmarkDrawAnnotated(b *testing.B) {
	buf := make([]byte, 8)
	for i := 0; i < b.N; i++ {
		//arblint:ignore randsource annotated exception for analyzer testdata
		if _, err := rand.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}
