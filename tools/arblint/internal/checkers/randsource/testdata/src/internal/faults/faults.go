// Package faults is randsource analyzer testdata: a SecrecyCritical package
// that is also SimulationExempt, so its seeded math/rand draws produce no
// findings. This file deliberately carries no expectation comments, and
// analysistest fails the regression test on any unexpected diagnostic — i.e.
// whenever the exemption stops applying.
package faults

import "math/rand"

// Pick is a deterministic simulation draw: seeded replay state, not a secret.
func Pick(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// Uniform is a second use site, proving the whole package is exempt rather
// than a single annotated line.
func Uniform(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
