// Package ahe is randsource analyzer testdata: a determinism-required
// benchmark package (by path suffix) whose bench file draws from
// crypto/rand.
package ahe
