// Package shamir is randsource analyzer testdata: a secrecy-critical
// package (by path suffix) drawing from math/rand.
package shamir

import "math/rand" // want `import of math/rand in secrecy-critical package`

// Coefficient leaks a predictable share coefficient.
func Coefficient() int64 {
	return rand.Int63() // want `use of rand.Int63 \(math/rand banned here\)`
}

// Shuffle leaks through a second reference to the banned package.
func Shuffle(n int) int {
	return rand.Intn(n) // want `use of rand.Intn \(math/rand banned here\)`
}

// SimCoefficient is the annotated simulation exception: the directive
// suppresses the use on the next line, so no finding is expected.
func SimCoefficient() int64 {
	//arblint:ignore randsource deterministic draw for analyzer testdata
	return rand.Int63()
}
