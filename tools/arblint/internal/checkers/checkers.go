// Package checkers is the arblint analyzer registry: the nine domain
// analyzers plus the always-on directive validator, in the order the driver
// runs and documents them (docs/ANALYSIS.md). The first five are syntactic
// (PR 3); the last four ride the interprocedural dataflow engine
// (internal/dataflow) and reason through helper-function hops.
package checkers

import (
	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/checkers/bigintalias"
	"arboretum/tools/arblint/internal/checkers/budgetflow"
	"arboretum/tools/arblint/internal/checkers/ctxcheckpoint"
	"arboretum/tools/arblint/internal/checkers/errdiscard"
	"arboretum/tools/arblint/internal/checkers/noiserelease"
	"arboretum/tools/arblint/internal/checkers/randsource"
	"arboretum/tools/arblint/internal/checkers/rawgo"
	"arboretum/tools/arblint/internal/checkers/secretflow"
	"arboretum/tools/arblint/internal/checkers/walorder"
	"arboretum/tools/arblint/internal/directive"
)

// Domain returns the nine domain analyzers.
func Domain() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		randsource.Analyzer,
		budgetflow.Analyzer,
		bigintalias.Analyzer,
		rawgo.Analyzer,
		errdiscard.Analyzer,
		noiserelease.Analyzer,
		secretflow.Analyzer,
		ctxcheckpoint.Analyzer,
		walorder.Analyzer,
	}
}

// All returns every analyzer, including the directive validator (which
// knows the registry's names so it can reject typo'd suppressions).
func All() []*analysis.Analyzer {
	domain := Domain()
	names := make([]string, len(domain))
	for i, a := range domain {
		names[i] = a.Name
	}
	return append(domain, directive.Analyzer(names))
}
