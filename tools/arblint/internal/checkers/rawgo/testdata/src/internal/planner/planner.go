// Package planner is rawgo analyzer testdata: a pool-only package (by path
// suffix) using raw concurrency.
package planner

import "sync"

// Fan launches ad-hoc goroutines behind a WaitGroup.
func Fan(fns []func()) {
	var wg sync.WaitGroup // want `sync\.WaitGroup in pool-only package`
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) { // want `raw go statement in pool-only package`
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// Shutdown is the annotated exception: the directive suppresses the go
// statement on the next line.
func Shutdown(stop func()) {
	//arblint:ignore rawgo fire-and-forget shutdown hook outside the compute path in analyzer testdata
	go stop()
}
