// Package rawgo keeps all concurrency in the hot-path packages
// (policy.PoolOnly) on the internal/parallel worker pool: raw go statements
// and ad-hoc sync.WaitGroup fan-out are flagged there. The pool is what
// makes results deterministic at every worker count and is the surface the
// tier-1 race pass exercises (docs/CONCURRENCY.md); a goroutine launched
// beside it re-introduces scheduling-dependent results and escapes the race
// coverage matrix. internal/parallel itself — the one place a goroutine may
// be born — is not in the policy set.
package rawgo

import (
	"go/ast"
	"go/types"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the rawgo checker.
var Analyzer = &analysis.Analyzer{
	Name: "rawgo",
	Doc:  "forbid raw go statements and sync.WaitGroup outside internal/parallel in pool-only packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	key := policy.PoolOnly.Match(pass.PkgPath)
	if key == "" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw go statement in pool-only package (%s): fan out via internal/parallel so determinism and race coverage hold", key)
			case *ast.SelectorExpr:
				if isWaitGroup(pass, n) {
					pass.Reportf(n.Pos(),
						"sync.WaitGroup in pool-only package (%s): use internal/parallel instead of ad-hoc fan-out", key)
				}
			}
			return true
		})
	}
	return nil
}

// isWaitGroup reports whether sel is a reference to the sync.WaitGroup type.
func isWaitGroup(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "WaitGroup" {
		return false
	}
	tn, ok := pass.ObjectOf(sel.Sel).(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return false
	}
	return tn.Pkg().Path() == "sync"
}
