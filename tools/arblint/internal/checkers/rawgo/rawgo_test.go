package rawgo_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/rawgo"
)

func TestRawGo(t *testing.T) {
	analysistest.Run(t, rawgo.Analyzer, "internal/planner")
}
