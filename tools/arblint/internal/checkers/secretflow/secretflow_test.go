package secretflow_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/secretflow"
)

func TestSecretFlows(t *testing.T) {
	analysistest.Run(t, secretflow.Analyzer, "internal/mpc")
}

// TestDefiningPackageClean runs the analyzer over the package defining the
// secret type: it handles shares without formatting them, so it is clean.
func TestDefiningPackageClean(t *testing.T) {
	analysistest.Run(t, secretflow.Analyzer, "internal/shamir")
}
