// Package secretflow bans flows from cryptographic secrets — Paillier
// private keys, BGV secret keys, Shamir shares, VSR dealings
// (policy.SecretTypes) — into anything that renders or persists them: fmt
// error/format strings, the log package, and JSON encoders. A secret in an
// error message survives into HTTP responses, journals, and CI logs long
// after the code that leaked it is gone, so the ban applies in every
// package, not just the boundary ones. Taint is value-level: projecting a
// field out of a secret struct (a share's public evaluation point, a
// dealing's sender index) is not a leak unless the field's own type is
// secret; what the analyzer hunts is the whole value reaching a format verb
// or encoder, directly or through helpers (the summaries make the helper
// hop visible).
package secretflow

import (
	"go/ast"
	"go/types"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/dataflow"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the secretflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "secretflow",
	Doc:  "key material, shares, and dealings must never flow into errors, logs, or encoders",
	Run:  run,
}

var spec = &dataflow.Spec{
	Key: "secretflow",
	SourceType: func(t types.Type) (string, bool) {
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		path := obj.Pkg().Path()
		for key, names := range policy.SecretTypes {
			if (path == key || strings.HasSuffix(path, "/"+key)) && names[obj.Name()] {
				return path[strings.LastIndex(path, "/")+1:] + "." + obj.Name(), true
			}
		}
		return "", false
	},
	Sink: func(callee *types.Func, call *ast.CallExpr) (string, bool) {
		if callee.Pkg() == nil {
			return "", false
		}
		name := callee.Name()
		switch callee.Pkg().Path() {
		case "fmt":
			switch name {
			case "Errorf", "Sprint", "Sprintf", "Sprintln",
				"Print", "Printf", "Println",
				"Fprint", "Fprintf", "Fprintln":
				return "fmt." + name, true
			}
		case "log":
			return "log." + name, true
		case "encoding/json":
			switch name {
			case "Marshal", "MarshalIndent", "Encode":
				return "json." + name, true
			}
		}
		return "", false
	},
}

func run(pass *analysis.Pass) error {
	if pass.Prog == nil || pass.TypesInfo == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := pass.Prog.TaintSummary(spec, obj)
			for _, v := range sum.Violations {
				pass.Reportf(v.Pos,
					"secret %s flows into %s: key material must never reach error strings, logs, or encoders",
					v.Source, v.Sink)
			}
		}
	}
	return nil
}
