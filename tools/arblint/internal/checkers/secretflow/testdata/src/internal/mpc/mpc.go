// Package mpc is secretflow analyzer testdata: a client of the secret Share
// type that leaks whole values into format verbs, logs, and encoders —
// directly and through a helper hop — while field projections and wrapped
// errors stay clean. secretflow runs in every package, so this needs no
// special path.
package mpc

import (
	"encoding/json"
	"fmt"
	"log"

	shamir "arboretum/tools/arblint/internal/checkers/secretflow/testdata/src/internal/shamir"
)

// LeakError formats the whole share into an error string.
func LeakError(sh shamir.Share) error {
	return fmt.Errorf("bad share %v", sh) // want `secret shamir.Share flows into fmt.Errorf`
}

// LeakLog writes shares to the log package (every log function is a sink).
func LeakLog(shares []shamir.Share) {
	log.Printf("state: %v", shares) // want `secret shamir.Share flows into log.Printf`
}

// describe is the helper the interprocedural hop goes through: its
// parameter reaches fmt.Sprintf.
func describe(v interface{}) string {
	return fmt.Sprintf("<%v>", v)
}

// LeakViaHelper hands the share to describe; the helper's summary makes the
// call site the sink.
func LeakViaHelper(sh shamir.Share) string {
	return describe(sh) // want `secret shamir.Share flows into fmt.Sprintf via describe`
}

// LeakEncode marshals the share.
func LeakEncode(sh shamir.Share) []byte {
	out, _ := json.Marshal(sh) // want `secret shamir.Share flows into json.Marshal`
	return out
}

// FieldIsPublic projects the public evaluation point: not a leak — the
// field's own type, not the whole value's, decides.
func FieldIsPublic(sh shamir.Share) error {
	return fmt.Errorf("share at x=%d rejected", sh.X)
}

// WrapError wraps an error from secret-handling code: errors launder, the
// leak (if any) is reported where the error was built.
func WrapError(shares []shamir.Share) error {
	if _, err := shamir.Reconstruct(shares); err != nil {
		return fmt.Errorf("reconstruct: %w", err)
	}
	return nil
}

// Annotated is the recorded exception: the directive suppresses the leak on
// the next line.
func Annotated(sh shamir.Share) {
	//arblint:ignore secretflow recorded exception for analyzer testdata
	fmt.Println(sh)
}
