// Package shamir is secretflow analyzer testdata: a stand-in exposing the
// secret-typed Share the real internal/shamir exports. The policy table's
// SecretTypes matches it by path suffix.
package shamir

// Share mirrors the real secret share: X is the public evaluation point, Y
// is the secret polynomial value.
type Share struct {
	X int
	Y []byte
}

// Reconstruct mirrors the real recovery entry point.
func Reconstruct(shares []Share) ([]byte, error) {
	return shares[0].Y, nil
}
