// Package walorder enforces the WAL discipline from the client side: disk
// is never behind memory. internal/wal's contract is that Append fsyncs the
// record and only then applies it to in-memory state, via the apply
// callback handed to wal.Open; a crash can therefore lose an un-acked
// append but never an observed state transition (docs/FAULTS.md). That
// contract evaporates if a WAL client mutates its durable state *before*
// the append returns — the mutation is observable (and, after a crash,
// divergent from the log) with no record behind it.
//
// The analyzer recovers the durable-state roots mechanically: it finds the
// wal.Open call in each client package (policy.WALClients), takes the apply
// callback passed as its third argument, and collects every field of the
// callback's receiver type that the callback (or same-type methods it
// calls) assigns — those fields ARE the durable state, by construction.
// It then checks every other function in the package: a write to a root
// field (directly, or by calling any function that transitively writes one)
// that may precede — on some control-flow path, per the function's CFG — a
// call that transitively reaches wal Append/Rewrite is a finding. Both
// sides of the race look through helpers: `jn.finishReplay()` is a root
// write, `s.journalTerminal(...)` is an append, wherever the bodies live.
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/dataflow"
	"arboretum/tools/arblint/internal/policy"
)

// Analyzer is the walorder checker.
var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "no durable-state mutation observable before its WAL append is fsync-confirmed",
	Run:  run,
}

// rootKey identifies one durable field: the apply receiver's type plus the
// field name.
type rootKey struct {
	owner *types.TypeName
	field string
}

func run(pass *analysis.Pass) error {
	if pass.Prog == nil || pass.TypesInfo == nil {
		return nil
	}
	if !policy.WALClients.Matches(pass.PkgPath) {
		return nil
	}

	// 1. Find the apply callbacks: third argument of wal.Open calls.
	applyFns := map[*types.Func]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := dataflow.CalleeOf(pass.TypesInfo, call)
			if callee == nil || !inWalPkg(callee) || callee.Name() != "Open" || len(call.Args) < 3 {
				return true
			}
			if sel, ok := ast.Unparen(call.Args[2]).(*ast.SelectorExpr); ok {
				if m, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					applyFns[m] = true
				}
			}
			return true
		})
	}
	if len(applyFns) == 0 {
		return nil
	}

	// 2. Collect the durable roots each apply callback maintains.
	roots := map[rootKey]bool{}
	for fn := range applyFns {
		owner := receiverTypeName(fn)
		if owner == nil {
			continue
		}
		collectRoots(pass.Prog, fn, owner, roots, map[*types.Func]bool{})
	}
	if len(roots) == 0 {
		return nil
	}

	// Registry predicates, namespaced per package (the root set differs
	// between WAL clients).
	writesKey := "walorder-writes:" + pass.PkgPath
	writesRoot := func(f *dataflow.Func) bool {
		hit := false
		eachRootWrite(f.Info, f.Decl.Body, roots, func(pos token.Pos, rk rootKey) {
			hit = true
		})
		return hit
	}
	appendsKey := "walorder-appends"
	reachesAppend := func(f *dataflow.Func) bool {
		hit := false
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if hit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if c := dataflow.CalleeOf(f.Info, call); c != nil && isWalAppend(c) {
					hit = true
				}
			}
			return true
		})
		return hit
	}

	// 3. Check every function body (and each function literal separately —
	// closures get their own CFG) except the apply callbacks themselves.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && applyFns[obj] {
				continue
			}
			checkBody(pass, fd.Body, roots, writesKey, writesRoot, appendsKey, reachesAppend)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body, roots, writesKey, writesRoot, appendsKey, reachesAppend)
				}
				return true
			})
		}
	}
	return nil
}

// event is one ordered occurrence inside a function body.
type event struct {
	pos  token.Pos
	desc string
}

// checkBody reports every root write in body that may precede an append.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, roots map[rootKey]bool,
	writesKey string, writesRoot func(*dataflow.Func) bool,
	appendsKey string, reachesAppend func(*dataflow.Func) bool) {

	var writes, appends []event

	eachRootWrite(pass.TypesInfo, body, roots, func(pos token.Pos, rk rootKey) {
		writes = append(writes, event{pos, rk.owner.Name() + "." + rk.field})
	})

	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := dataflow.CalleeOf(pass.TypesInfo, call)
		if callee == nil {
			return
		}
		if isWalAppend(callee) || pass.Prog.FuncMatches(callee, appendsKey, reachesAppend) {
			appends = append(appends, event{call.Pos(), callee.Name()})
		} else if pass.Prog.FuncMatches(callee, writesKey, writesRoot) {
			writes = append(writes, event{call.Pos(), "via " + callee.Name()})
		}
	})

	if len(writes) == 0 || len(appends) == 0 {
		return
	}
	cfg := dataflow.BuildCFG(body)
	for _, w := range writes {
		for _, a := range appends {
			if cfg.MayPrecede(w.pos, a.pos) {
				pass.Reportf(w.pos,
					"durable state (%s) is mutated before the WAL append at line %d is fsync-confirmed: after a crash here, memory would be ahead of disk — mutate only in the apply callback, after Append returns",
					w.desc, pass.Fset.Position(a.pos).Line)
				break
			}
		}
	}
}

// eachRootWrite invokes fn for every direct mutation of a root field in
// body: assignment, inc/dec, and delete() on a root map. Function literal
// interiors are skipped (analyzed as their own bodies).
func eachRootWrite(info *types.Info, body *ast.BlockStmt, roots map[rootKey]bool, fn func(token.Pos, rootKey)) {
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rk, ok := rootFieldOf(info, lhs, roots); ok {
					fn(lhs.Pos(), rk)
				}
			}
		case *ast.IncDecStmt:
			if rk, ok := rootFieldOf(info, n.X, roots); ok {
				fn(n.X.Pos(), rk)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					if rk, ok := rootFieldOf(info, n.Args[0], roots); ok {
						fn(n.Args[0].Pos(), rk)
					}
				}
			}
		}
	})
}

// rootFieldOf unwraps an lvalue (x.f, x.f[k], *x.f) down to a selector and
// reports whether it denotes a root field.
func rootFieldOf(info *types.Info, e ast.Expr, roots map[rootKey]bool) (rootKey, bool) {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			owner := namedTypeOf(info.TypeOf(v.X))
			if owner == nil {
				return rootKey{}, false
			}
			rk := rootKey{owner, v.Sel.Name}
			return rk, roots[rk]
		default:
			return rootKey{}, false
		}
	}
}

// collectRoots gathers the fields of owner that fn assigns, recursing into
// same-owner methods fn calls (an apply callback may delegate per-record-op
// helpers).
func collectRoots(prog *dataflow.Program, fn *types.Func, owner *types.TypeName, roots map[rootKey]bool, seen map[*types.Func]bool) {
	if seen[fn] {
		return
	}
	seen[fn] = true
	f := prog.FuncOf(fn)
	if f == nil {
		return
	}
	all := map[rootKey]bool{} // accept writes on any value of the owner type, not just the receiver
	eachRootWriteAny(f.Info, f.Decl.Body, owner, func(pos token.Pos, rk rootKey) {
		all[rk] = true
	})
	for rk := range all {
		roots[rk] = true
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if c := dataflow.CalleeOf(f.Info, call); c != nil && receiverTypeName(c) == owner {
				collectRoots(prog, c, owner, roots, seen)
			}
		}
		return true
	})
}

// eachRootWriteAny is eachRootWrite with "every field of owner" as the root
// set: used to discover the roots in the first place.
func eachRootWriteAny(info *types.Info, body *ast.BlockStmt, owner *types.TypeName, fn func(token.Pos, rootKey)) {
	probe := func(pos token.Pos, e ast.Expr) {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.SelectorExpr:
				if namedTypeOf(info.TypeOf(v.X)) == owner {
					fn(pos, rootKey{owner, v.Sel.Name})
				}
				return
			default:
				return
			}
		}
	}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				probe(lhs.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			probe(n.X.Pos(), n.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					probe(n.Args[0].Pos(), n.Args[0])
				}
			}
		}
	})
}

func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func receiverTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedTypeOf(sig.Recv().Type())
}

func namedTypeOf(t types.Type) *types.TypeName {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj()
		default:
			return nil
		}
	}
}

func inWalPkg(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "internal/wal" || strings.HasSuffix(path, "/internal/wal") ||
		strings.HasSuffix(path, "/wal")
}

func isWalAppend(fn *types.Func) bool {
	return inWalPkg(fn) && (fn.Name() == "Append" || fn.Name() == "Rewrite")
}
