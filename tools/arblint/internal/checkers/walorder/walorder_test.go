package walorder_test

import (
	"testing"

	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/checkers/walorder"
)

func TestWALOrdering(t *testing.T) {
	analysistest.Run(t, walorder.Analyzer, "internal/ledger")
}
