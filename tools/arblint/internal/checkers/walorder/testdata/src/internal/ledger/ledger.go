// Package ledger is walorder analyzer testdata: a WAL client
// (policy.WALClients matches it by path suffix) whose apply callback
// maintains two durable fields. The seeded violations mutate them before
// the append — directly, through a helper write, through a helper append,
// and across a loop's back edge — while the clean cases mutate only via
// apply or after the append returns.
package ledger

import (
	wal "arboretum/tools/arblint/internal/checkers/walorder/testdata/src/internal/wal"
)

// Ledger owns the durable state. tenants and reserved are roots (apply
// writes them); hits is scratch and may move freely.
type Ledger struct {
	log      *wal.Log
	tenants  map[string]int64
	reserved int64
	hits     int
}

// Open wires the apply callback into the WAL.
func Open(path string) (*Ledger, error) {
	l := &Ledger{tenants: map[string]int64{}}
	lg, err := wal.Open(path, 0, l.apply)
	if err != nil {
		return nil, err
	}
	l.log = lg
	return l, nil
}

// apply is the only place durable state may change: it runs after the
// record is fsync-confirmed.
func (l *Ledger) apply(r wal.Record) {
	switch r.Op {
	case "reserve":
		l.reserved += r.N
	case "drop":
		delete(l.tenants, string(r.Data))
	default:
		l.setTenant(string(r.Data), r.N)
	}
}

// setTenant is an apply helper: the root discovery follows same-owner calls
// out of apply, so tenants is a root even though apply writes it here.
func (l *Ledger) setTenant(id string, n int64) {
	l.tenants[id] = n
}

// Reserve is the direct seeded violation: memory moves before disk.
func (l *Ledger) Reserve(n int64) error {
	l.reserved += n // want `durable state \(Ledger.reserved\) is mutated before the WAL append`
	return l.log.Append(wal.Record{Op: "reserve", N: n})
}

// bump writes a root; callers that follow it with an append inherit the
// violation through the registry.
func (l *Ledger) bump(id string) {
	l.tenants[id] = 0
}

// Grant is the helper-write seeded violation: the mutation hides one call
// deep.
func (l *Ledger) Grant(id string) error {
	l.bump(id) // want `durable state \(via bump\) is mutated before the WAL append`
	return l.log.Append(wal.Record{Op: "grant", Data: []byte(id)})
}

// persist reaches the WAL append one call deep.
func (l *Ledger) persist(r wal.Record) error {
	return l.log.Append(r)
}

// Spend is the helper-append seeded violation: the write precedes a call
// that transitively appends.
func (l *Ledger) Spend(n int64) error {
	l.reserved -= n // want `durable state \(Ledger.reserved\) is mutated before the WAL append`
	return l.persist(wal.Record{Op: "spend", N: n})
}

// Replay is the back-edge seeded violation: the write follows the append in
// source order, but the loop carries it ahead of the next iteration's
// append.
func (l *Ledger) Replay(rs []wal.Record) error {
	for _, r := range rs {
		if err := l.log.Append(r); err != nil {
			return err
		}
		l.reserved++ // want `durable state \(Ledger.reserved\) is mutated before the WAL append`
	}
	return nil
}

// Commit is clean: the mutation happens inside apply, after Append fsyncs.
func (l *Ledger) Commit(id string, n int64) error {
	return l.log.Append(wal.Record{Op: "set", N: n, Data: []byte(id)})
}

// Touch is clean: hits is not durable state (apply never writes it).
func (l *Ledger) Touch(n int64) error {
	l.hits++
	return l.log.Append(wal.Record{Op: "touch", N: n})
}

// Reset is clean: the write cannot precede the straight-line append above
// it.
func (l *Ledger) Reset(r wal.Record) error {
	if err := l.log.Append(r); err != nil {
		return err
	}
	l.reserved = 0
	return nil
}

// Annotated is the recorded exception: the directive suppresses the finding
// on the next line.
func (l *Ledger) Annotated(n int64) error {
	//arblint:ignore walorder recorded exception for analyzer testdata
	l.reserved += n
	return l.log.Append(wal.Record{Op: "reserve", N: n})
}
