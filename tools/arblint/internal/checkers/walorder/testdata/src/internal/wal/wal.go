// Package wal is walorder analyzer testdata: a stand-in exposing the
// Open/Append/Rewrite shape the real internal/wal exports. The analyzer
// matches it by path suffix and reads the apply callback from Open's third
// argument.
package wal

// Record mirrors the real WAL record shape.
type Record struct {
	Op   string
	N    int64
	Data []byte
}

// Log mirrors the real fsync-before-apply log.
type Log struct {
	apply func(Record)
}

// Open mirrors the real constructor: the third argument is the apply
// callback that owns every durable-state mutation.
func Open(path string, limit int, apply func(Record)) (*Log, error) {
	return &Log{apply: apply}, nil
}

// Append mirrors the real fsync-then-apply append.
func (l *Log) Append(r Record) error {
	l.apply(r)
	return nil
}

// Rewrite mirrors the real compaction entry point.
func (l *Log) Rewrite(rs []Record) error {
	for _, r := range rs {
		l.apply(r)
	}
	return nil
}
