// Package analysis defines the analyzer interface arblint's checkers are
// written against. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, Reportf) so the
// checkers can migrate to the upstream multichecker mechanically if that
// dependency is ever vendored; until then the suite runs entirely on the
// standard library (go/ast, go/types) plus `go list -export` for type
// information.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"arboretum/tools/arblint/internal/dataflow"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //arblint:ignore directives. It must be a single lower-case word.
	Name string

	// Doc is the one-paragraph description shown by `arblint -list`.
	Doc string

	// TestFiles requests that the pass include the package's _test.go
	// files. Test files are parsed but NOT type-checked (the driver does
	// not build test dependency export data), so analyzers that set this
	// must degrade to syntactic analysis when TypesInfo lookups miss.
	TestFiles bool

	// Run applies the analyzer to one package, reporting findings through
	// pass.Report/Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset *token.FileSet

	// Files holds the package's compiled (non-test) files, fully
	// type-checked.
	Files []*ast.File

	// TestFiles holds the package's _test.go files (in-package and
	// external), parsed only. Nil unless Analyzer.TestFiles is set.
	TestFiles []*ast.File

	// PkgPath is the package's import path (e.g. "arboretum/internal/ahe").
	PkgPath string

	// Pkg and TypesInfo describe the type-checked Files. They may be nil
	// when type checking failed; analyzers must tolerate nil lookups.
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-load function registry shared by every pass of one
	// driver run: the interprocedural analyzers resolve callees in other
	// packages through it. May be nil in minimal test harnesses; analyzers
	// that need it must tolerate that by degrading to intraprocedural
	// reasoning.
	Prog *dataflow.Program

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records a finding at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// AllFiles returns the files the analyzer should walk: the type-checked
// files plus, for TestFiles analyzers, the parsed test files.
func (p *Pass) AllFiles() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// ObjectOf is a nil-tolerant TypesInfo.ObjectOf: it returns nil for idents
// in files that were not type-checked (test files).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.ObjectOf(id)
}

// TypeOf is a nil-tolerant TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}
