// Package a is directive analyzer testdata. The want expectations live
// inside the directives' reason text, which the parser treats as opaque.
package a

//arblint:ignore nosuch reason text // want `names unknown analyzer "nosuch"`
var Unknown = 1

//arblint:ignore directive cannot be silenced // want `directive findings cannot be suppressed`
var Self = 2

//arblint:ignore randsource a well-formed directive produces no finding
var Fine = 3
