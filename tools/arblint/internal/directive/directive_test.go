package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"arboretum/tools/arblint/internal/analysis"
	"arboretum/tools/arblint/internal/analysistest"
	"arboretum/tools/arblint/internal/directive"
)

func TestDirectiveValidation(t *testing.T) {
	analysistest.Run(t, directive.Analyzer([]string{"randsource"}), "a")
}

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// TestMalformedDirectives covers the shapes that cannot carry an inline want
// comment: a missing analyzer name and a missing reason.
func TestMalformedDirectives(t *testing.T) {
	fset, f := parse(t, `package p

//arblint:ignore
var A = 1

//arblint:ignore randsource
var B = 2
`)
	a := directive.Analyzer([]string{"randsource"})
	pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: []*ast.File{f}}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	diags := pass.Diagnostics()
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed //arblint:ignore") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
}

// TestFilterScope checks the suppression window: the directive's own line,
// the line immediately below, nothing further — and that a malformed
// directive (missing reason) suppresses nothing.
func TestFilterScope(t *testing.T) {
	fset, f := parse(t, `package p

//arblint:ignore fake justified exception
var A = 1

var B = 2

//arblint:ignore fake
var C = 3
`)
	at := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	diags := []analysis.Diagnostic{
		{Pos: at(3), Analyzer: "fake", Message: "on directive line"},
		{Pos: at(4), Analyzer: "fake", Message: "line below"},
		{Pos: at(6), Analyzer: "fake", Message: "out of range"},
		{Pos: at(4), Analyzer: "other", Message: "different analyzer"},
		{Pos: at(9), Analyzer: "fake", Message: "under reasonless directive"},
	}
	kept := directive.Filter(fset, []*ast.File{f}, diags)
	want := []string{"out of range", "different analyzer", "under reasonless directive"}
	if len(kept) != len(want) {
		t.Fatalf("kept %d diagnostics, want %d: %v", len(kept), len(want), kept)
	}
	for i, k := range kept {
		if k.Message != want[i] {
			t.Errorf("kept[%d] = %q, want %q", i, k.Message, want[i])
		}
	}
}

// TestStaleSuppression seeds one live and one stale directive: the stale one
// becomes a finding, the live one does not, and a directive naming an
// analyzer that did not run is left unjudged.
func TestStaleSuppression(t *testing.T) {
	fset, f := parse(t, `package p

//arblint:ignore fake this one still suppresses a finding
var A = 1

//arblint:ignore fake this one suppresses nothing anymore
var B = 2

//arblint:ignore skipped cannot be judged, the analyzer did not run
var C = 3
`)
	s := directive.NewSuppressor(fset, []*ast.File{f})
	at := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !s.Suppress(fset, analysis.Diagnostic{Pos: at(4), Analyzer: "fake", Message: "live"}) {
		t.Fatal("live directive did not suppress")
	}
	stale := s.Stale(map[string]bool{"fake": true})
	if len(stale) != 1 {
		t.Fatalf("got %d stale findings, want 1: %v", len(stale), stale)
	}
	if got := fset.Position(stale[0].Pos).Line; got != 6 {
		t.Errorf("stale finding at line %d, want 6", got)
	}
	if !strings.Contains(stale[0].Message, "stale //arblint:ignore fake") {
		t.Errorf("unexpected stale message %q", stale[0].Message)
	}
	if stale[0].Analyzer != directive.Name {
		t.Errorf("stale finding attributed to %q, want %q", stale[0].Analyzer, directive.Name)
	}
}
