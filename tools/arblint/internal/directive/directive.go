// Package directive implements arblint's shared suppression mechanism:
//
//	//arblint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive suppresses matching diagnostics on its own line and on the
// line immediately below, so it works both at the end of the offending line
// and as a standalone comment above it. The reason is mandatory — a
// suppression that cannot say why it exists is a policy hole, and the
// `directive` analyzer (always enabled, never suppressible) reports
// malformed or unknown-analyzer directives as findings of their own.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
)

const prefix = "//arblint:ignore"

// Directive is one parsed //arblint:ignore comment.
type Directive struct {
	Pos       token.Pos
	Line      int
	Analyzers []string // analyzer names the directive suppresses
	Reason    string
	Malformed string // non-empty: why the directive is invalid
}

// parseComment parses a single comment line, returning ok=false when it is
// not an arblint directive at all.
func parseComment(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	d := Directive{Pos: c.Pos()}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// Something like //arblint:ignoreXYZ — not a directive.
		return Directive{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.Malformed = "missing analyzer name and reason"
		return d, true
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			d.Analyzers = append(d.Analyzers, name)
		}
	}
	if len(d.Analyzers) == 0 {
		d.Malformed = "missing analyzer name"
		return d, true
	}
	d.Reason = strings.Join(fields[1:], " ")
	if d.Reason == "" {
		d.Malformed = "missing reason: write //arblint:ignore <analyzer> <why this exception is sound>"
	}
	return d, true
}

// Parse extracts every directive from a file.
func Parse(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := parseComment(c)
			if !ok {
				continue
			}
			d.Line = fset.Position(c.Pos()).Line
			out = append(out, d)
		}
	}
	return out
}

// Suppressor indexes the well-formed directives of one package's files and
// tracks which of them actually suppressed a diagnostic, so the driver can
// report the ones that did not: a stale //arblint:ignore is a policy hole
// pretending to be an exception, and deleting it is part of keeping the
// remediated tree honest.
type Suppressor struct {
	dirs []*tracked
	// byLine[file][line] -> directives covering that line
	byLine map[string]map[int][]*tracked
}

type tracked struct {
	d    Directive
	file string
	used bool
}

// NewSuppressor indexes every well-formed directive in files.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{byLine: map[string]map[int][]*tracked{}}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		for _, d := range Parse(fset, f) {
			if d.Malformed != "" {
				continue
			}
			t := &tracked{d: d, file: name}
			s.dirs = append(s.dirs, t)
			byLine := s.byLine[name]
			if byLine == nil {
				byLine = map[int][]*tracked{}
				s.byLine[name] = byLine
			}
			for _, line := range []int{d.Line, d.Line + 1} {
				byLine[line] = append(byLine[line], t)
			}
		}
	}
	return s
}

// Suppress reports whether diag is covered by a directive, crediting every
// directive that covers it. Diagnostics of the directive analyzer itself are
// never suppressible.
func (s *Suppressor) Suppress(fset *token.FileSet, diag analysis.Diagnostic) bool {
	if diag.Analyzer == Name {
		return false
	}
	pos := fset.Position(diag.Pos)
	hit := false
	for _, t := range s.byLine[pos.Filename][pos.Line] {
		for _, a := range t.d.Analyzers {
			if a == diag.Analyzer {
				t.used = true
				hit = true
			}
		}
	}
	return hit
}

// Stale returns one diagnostic per directive that suppressed nothing, for
// directives whose named analyzers all ran (a directive naming a disabled
// analyzer cannot be judged and is skipped).
func (s *Suppressor) Stale(ran map[string]bool) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, t := range s.dirs {
		if t.used {
			continue
		}
		judgeable := true
		for _, a := range t.d.Analyzers {
			if !ran[a] {
				judgeable = false
				break
			}
		}
		if !judgeable {
			continue
		}
		out = append(out, analysis.Diagnostic{
			Pos:      t.d.Pos,
			Analyzer: Name,
			Message: "stale //arblint:ignore " + strings.Join(t.d.Analyzers, ",") +
				": it suppresses no finding anymore — delete the directive (or fix the regression it hides)",
		})
	}
	return out
}

// Filter drops diagnostics suppressed by a well-formed directive in files.
// Diagnostics of the directive analyzer itself are never suppressible. It
// does not report stale directives — the driver does that, via Suppressor,
// over exactly the analyzers that ran.
func Filter(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) []analysis.Diagnostic {
	s := NewSuppressor(fset, files)
	var kept []analysis.Diagnostic
	for _, diag := range diags {
		if s.Suppress(fset, diag) {
			continue
		}
		kept = append(kept, diag)
	}
	return kept
}

// Name is the directive analyzer's name.
const Name = "directive"

// Analyzer returns the always-on checker that validates suppression
// directives themselves: every //arblint:ignore must carry a reason and name
// only analyzers that exist (known should be the registry's name list).
func Analyzer(known []string) *analysis.Analyzer {
	knownSet := map[string]bool{Name: true}
	for _, n := range known {
		knownSet[n] = true
	}
	return &analysis.Analyzer{
		Name:      Name,
		Doc:       "validate //arblint:ignore directives: reason mandatory, analyzer names must exist",
		TestFiles: true,
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.AllFiles() {
				for _, d := range Parse(pass.Fset, f) {
					if d.Malformed != "" {
						pass.Reportf(d.Pos, "malformed //arblint:ignore directive: %s", d.Malformed)
						continue
					}
					for _, a := range d.Analyzers {
						if !knownSet[a] {
							pass.Reportf(d.Pos, "//arblint:ignore names unknown analyzer %q", a)
						}
						if a == Name {
							pass.Reportf(d.Pos, "directive findings cannot be suppressed")
						}
					}
				}
			}
			return nil
		},
	}
}
