// Package directive implements arblint's shared suppression mechanism:
//
//	//arblint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive suppresses matching diagnostics on its own line and on the
// line immediately below, so it works both at the end of the offending line
// and as a standalone comment above it. The reason is mandatory — a
// suppression that cannot say why it exists is a policy hole, and the
// `directive` analyzer (always enabled, never suppressible) reports
// malformed or unknown-analyzer directives as findings of their own.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"arboretum/tools/arblint/internal/analysis"
)

const prefix = "//arblint:ignore"

// Directive is one parsed //arblint:ignore comment.
type Directive struct {
	Pos       token.Pos
	Line      int
	Analyzers []string // analyzer names the directive suppresses
	Reason    string
	Malformed string // non-empty: why the directive is invalid
}

// parseComment parses a single comment line, returning ok=false when it is
// not an arblint directive at all.
func parseComment(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	d := Directive{Pos: c.Pos()}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// Something like //arblint:ignoreXYZ — not a directive.
		return Directive{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.Malformed = "missing analyzer name and reason"
		return d, true
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			d.Analyzers = append(d.Analyzers, name)
		}
	}
	if len(d.Analyzers) == 0 {
		d.Malformed = "missing analyzer name"
		return d, true
	}
	d.Reason = strings.Join(fields[1:], " ")
	if d.Reason == "" {
		d.Malformed = "missing reason: write //arblint:ignore <analyzer> <why this exception is sound>"
	}
	return d, true
}

// Parse extracts every directive from a file.
func Parse(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := parseComment(c)
			if !ok {
				continue
			}
			d.Line = fset.Position(c.Pos()).Line
			out = append(out, d)
		}
	}
	return out
}

// Filter drops diagnostics suppressed by a well-formed directive in files.
// Diagnostics of the directive analyzer itself are never suppressible.
func Filter(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) []analysis.Diagnostic {
	// suppressed[file][line] -> analyzer set
	suppressed := map[string]map[int]map[string]bool{}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		for _, d := range Parse(fset, f) {
			if d.Malformed != "" {
				continue
			}
			byLine := suppressed[name]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				suppressed[name] = byLine
			}
			for _, line := range []int{d.Line, d.Line + 1} {
				set := byLine[line]
				if set == nil {
					set = map[string]bool{}
					byLine[line] = set
				}
				for _, a := range d.Analyzers {
					set[a] = true
				}
			}
		}
	}
	var kept []analysis.Diagnostic
	for _, diag := range diags {
		if diag.Analyzer != Name {
			pos := fset.Position(diag.Pos)
			if set := suppressed[pos.Filename][pos.Line]; set[diag.Analyzer] {
				continue
			}
		}
		kept = append(kept, diag)
	}
	return kept
}

// Name is the directive analyzer's name.
const Name = "directive"

// Analyzer returns the always-on checker that validates suppression
// directives themselves: every //arblint:ignore must carry a reason and name
// only analyzers that exist (known should be the registry's name list).
func Analyzer(known []string) *analysis.Analyzer {
	knownSet := map[string]bool{Name: true}
	for _, n := range known {
		knownSet[n] = true
	}
	return &analysis.Analyzer{
		Name:      Name,
		Doc:       "validate //arblint:ignore directives: reason mandatory, analyzer names must exist",
		TestFiles: true,
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.AllFiles() {
				for _, d := range Parse(pass.Fset, f) {
					if d.Malformed != "" {
						pass.Reportf(d.Pos, "malformed //arblint:ignore directive: %s", d.Malformed)
						continue
					}
					for _, a := range d.Analyzers {
						if !knownSet[a] {
							pass.Reportf(d.Pos, "//arblint:ignore names unknown analyzer %q", a)
						}
						if a == Name {
							pass.Reportf(d.Pos, "directive findings cannot be suppressed")
						}
					}
				}
			}
			return nil
		},
	}
}
