package arboretum

import (
	"strings"
	"testing"
)

func TestPlanFacade(t *testing.T) {
	res, err := Plan(PlanRequest{
		Name:       "top1",
		Source:     "aggr = sum(db);\nresult = em(aggr, 0.1);\noutput(result);",
		N:          1 << 30,
		Categories: 1 << 15,
		Goal:       MinimizeExpectedDeviceCPU,
		Limits:     DefaultLimits(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 0.1 {
		t.Errorf("ε = %g", res.Epsilon)
	}
	if res.CommitteeSize < 20 || res.CommitteeSize > 150 {
		t.Errorf("committee size = %d", res.CommitteeSize)
	}
	if !strings.Contains(res.Summary, "vignette") {
		t.Error("summary missing vignettes")
	}
	if res.DeviceExpectedCPU <= 0 || res.PrefixesExplored <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

// TestPlanFacadeRing plans against a natively calibrated ring model: the
// request must succeed end to end and an unknown ring name must error before
// any planning work happens.
func TestPlanFacadeRing(t *testing.T) {
	res, err := Plan(PlanRequest{
		Name:       "top1-ring",
		Source:     "aggr = sum(db);\nresult = em(aggr, 0.1);\noutput(result);",
		N:          1 << 20,
		Categories: 1 << 10,
		Goal:       MinimizeExpectedDeviceCPU,
		Limits:     DefaultLimits(),
		Ring:       "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceExpectedCPU <= 0 || res.Epsilon != 0.1 {
		t.Errorf("degenerate ring-calibrated result: %+v", res)
	}
	if _, err := Plan(PlanRequest{
		Source: "aggr = sum(db);\nresult = em(aggr, 0.1);\noutput(result);",
		N:      100, Goal: MinimizeExpectedDeviceCPU, Ring: "bogus",
	}); err == nil {
		t.Error("bogus ring name accepted")
	}
}

func TestPlanFacadeErrors(t *testing.T) {
	if _, err := Plan(PlanRequest{Source: "output(1);", N: 100, Goal: "bogus"}); err == nil {
		t.Error("bogus goal accepted")
	}
	if _, err := Plan(PlanRequest{Source: "output(db[0][0]);", N: 100, Categories: 2}); err == nil {
		t.Error("non-private query accepted")
	}
}

func TestDeploymentFacade(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{
		Devices: 64, Categories: 4, Seed: 7,
		Data: func(i int) int {
			if i%3 == 0 {
				return 1
			}
			return 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run("aggr = sum(db);\nresult = em(aggr, 3.0);\noutput(result);")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || int(res.Outputs[0]) != 2 {
		t.Errorf("outputs = %v, want the mode (2)", res.Outputs)
	}
	if res.AcceptedInputs != 64 {
		t.Errorf("accepted = %d", res.AcceptedInputs)
	}
	eps, _ := d.RemainingBudget()
	if eps >= 10 {
		t.Error("budget not charged")
	}
}

func TestEvaluationQueries(t *testing.T) {
	qs := EvaluationQueries()
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Name == "" || q.Source == "" || q.Lines <= 0 {
			t.Errorf("incomplete query info: %+v", q)
		}
	}
}

func TestEnergyGoal(t *testing.T) {
	res, err := Plan(PlanRequest{
		Name:       "top1-energy",
		Source:     "aggr = sum(db);\nresult = em(aggr, 0.1);\noutput(result);",
		N:          1 << 28,
		Categories: 1 << 15,
		Goal:       MinimizeExpectedDeviceEnergy,
		Limits:     DefaultLimits(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceExpectedCPU <= 0 {
		t.Errorf("degenerate energy-goal plan: %+v", res)
	}
}

func TestRunWithExponentiateEM(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{
		Devices: 64, Categories: 4, Seed: 9, BudgetEpsilon: 100,
		Data: func(i int) int {
			if i%2 == 0 {
				return 1
			}
			return i % 4
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunWithExponentiateEM("aggr = sum(db);\nresult = em(aggr, 3.0);\noutput(result);")
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Outputs[0]) != 1 {
		t.Errorf("exponentiate-variant top1 = %v, want 1", res.Outputs[0])
	}
}

func TestRunPlanned(t *testing.T) {
	src := "aggr = sum(db);\nresult = em(aggr, 3.0);\noutput(result);"
	// Force the device-tree + exponentiate plan, then execute with the
	// plan's structure.
	p, err := Plan(PlanRequest{
		Name: "planned", Source: src, N: 1 << 26, Categories: 8,
		Limits: DefaultLimits(),
		ForceChoices: map[string]string{
			"sum": "device-tree-fanout-8",
			"em":  "exponentiate",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(DeploymentConfig{
		Devices: 64, Categories: 8, Seed: 4, BudgetEpsilon: 100,
		Data: func(i int) int {
			if i%2 == 0 {
				return 6
			}
			return i % 8
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunPlanned(p, src)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Outputs[0]) != 6 {
		t.Errorf("planned run top1 = %v, want 6", res.Outputs[0])
	}
	if _, err := d.RunPlanned(nil, src); err == nil {
		t.Error("nil plan accepted")
	}
}
