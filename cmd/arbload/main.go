// Command arbload drives an arboretumd analyst gateway with concurrent
// analysts, as the load-test engine behind scripts/loadtest.sh.
//
// Usage:
//
//	arbload -addr 127.0.0.1:8750 -smoke
//	arbload -addr 127.0.0.1:8750 -clients 8 -queries 24 -tenants 4
//
// -smoke runs the API-conformance pass CI uses: it exercises every
// endpoint of docs/SERVICE.md (health, tenant create/list/budget, query
// submit/list/status/result/cancel), including a typed budget-exhausted
// rejection and a cancel of a queued job, and asserts the tenant's budget
// debit equals exactly the committed certificate spend. It expects the
// daemon to run with -job-workers 1 so a second submission stays queued
// behind the first (scripts/loadtest.sh arranges this).
//
// Without -smoke it hammers the gateway: -queries submissions spread
// round-robin over -tenants tenants from -clients concurrent clients,
// polled to completion. It retries rate-limited (429) and queue-full
// (503) submissions — so a tight daemon -rate is exercised, not fatal —
// and fails if any job fails, any budget is oversubscribed, or any
// tenant's spent ε differs from its completed jobs × the per-query ε. It
// prints a throughput/latency summary: the gateway's tracked baseline.
//
// The two -phase modes split that flow around a daemon kill, as the
// engine behind `scripts/loadtest.sh -kill`:
//
//	arbload -addr ... -phase submit -ids FILE -queries 24 -tenants 4
//	arbload -addr ... -phase verify -ids FILE
//
// `-phase submit` submits without waiting, appending one "tenant id"
// line to FILE per accepted (202) job, and exits cleanly when the daemon
// is killed mid-burst (transport errors are the expected end of the
// phase, not a failure). `-phase verify` runs against the restarted
// daemon: every acknowledged job in FILE must recover to done with the
// exact certificate spend, every journaled-but-unacknowledged job must
// be terminal (done, or failed closed as "crashed"), nothing may be left
// reserved, and each tenant's spent ε must equal its done jobs × the
// per-query ε — the exact-accounting bar for crash recovery.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"arboretum/internal/parallel"
)

// countQuery is the cheap fixed-price workload: a Laplace count with ε = 1
// (its certificate is exactly ε=1.0, which makes budget arithmetic exact).
const countQuery = "aggr = sum(db);\nnoised = laplace(aggr[0], 1.0);\noutput(declassify(noised));"

// countEpsilon is countQuery's certified price.
const countEpsilon = 1.0

// overBudgetQuery prices above any smoke tenant's remaining ε.
const overBudgetQuery = "aggr = sum(db);\nnoised = laplace(aggr[0], 50.0);\noutput(declassify(noised));"

func main() {
	addr := flag.String("addr", "127.0.0.1:8750", "arboretumd address")
	smoke := flag.Bool("smoke", false, "run the API conformance pass instead of the load test")
	phase := flag.String("phase", "", `kill-test phase: "submit" or "verify" (needs -ids)`)
	ids := flag.String("ids", "", "accepted-job file for -phase (one \"tenant id\" line per job)")
	clients := flag.Int("clients", 8, "concurrent analyst clients")
	queries := flag.Int("queries", 24, "total queries to submit")
	tenants := flag.Int("tenants", 4, "tenants to spread load across")
	timeout := flag.Duration("timeout", 3*time.Minute, "per-job completion timeout")
	flag.Parse()

	c := &client{base: "http://" + *addr, timeout: *timeout}
	var err error
	switch {
	case *smoke:
		err = runSmoke(c)
	case *phase == "submit":
		err = runKillSubmit(c, *queries, *tenants, *ids)
	case *phase == "verify":
		err = runKillVerify(c, *ids)
	case *phase != "":
		err = fmt.Errorf("unknown -phase %q (want submit or verify)", *phase)
	default:
		err = runLoad(c, *clients, *queries, *tenants)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbload:", err)
		os.Exit(1)
	}
}

// client is a minimal JSON API client for the docs/SERVICE.md surface.
type client struct {
	base    string
	timeout time.Duration
}

// apiErr mirrors the service error envelope.
type apiErr struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// call performs one request and decodes the JSON response into out (may be
// nil). It returns the status code and, for non-2xx, the error envelope.
func (c *client) call(method, path string, body, out any) (int, *apiErr, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	if resp.StatusCode >= 300 {
		var e apiErr
		_ = json.Unmarshal(data, &e)
		return resp.StatusCode, &e, nil
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, nil, fmt.Errorf("%s %s: decode: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil, nil
}

// job mirrors the service's job view.
type job struct {
	ID           string    `json:"id"`
	Tenant       string    `json:"tenant"`
	State        string    `json:"state"`
	Epsilon      float64   `json:"epsilon"`
	SpentEpsilon float64   `json:"spent_epsilon"`
	Outputs      []float64 `json:"outputs"`
	Error        string    `json:"error"`
	ErrorCode    string    `json:"error_code"`
}

// balance mirrors ledger.Balance.
type balance struct {
	Tenant      string  `json:"tenant"`
	EpsTotal    float64 `json:"eps_total"`
	EpsSpent    float64 `json:"eps_spent"`
	EpsReserved float64 `json:"eps_reserved"`
	Queries     int     `json:"queries"`
}

// ensureTenant creates the tenant, tolerating one that already exists
// (ledger files persist across daemon restarts).
func (c *client) ensureTenant(id string, eps float64) error {
	status, e, err := c.call("POST", "/v1/tenants", map[string]any{"tenant": id, "epsilon": eps}, nil)
	if err != nil {
		return err
	}
	if status != http.StatusCreated && (e == nil || e.Error.Code != "tenant_exists") {
		return fmt.Errorf("create tenant %s: status %d (%+v)", id, status, e)
	}
	return nil
}

// submit posts one query, retrying rate-limit and queue-full rejections.
func (c *client) submit(tenant, source string) (job, error) {
	deadline := time.Now().Add(c.timeout)
	for {
		var j job
		status, e, err := c.call("POST", "/v1/queries", map[string]any{"tenant": tenant, "source": source}, &j)
		if err != nil {
			return job{}, err
		}
		if status == http.StatusAccepted {
			return j, nil
		}
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			if time.Now().After(deadline) {
				return job{}, fmt.Errorf("submit for %s: still throttled at deadline (%+v)", tenant, e)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		return job{}, fmt.Errorf("submit for %s: status %d (%+v)", tenant, status, e)
	}
}

// wait polls the status endpoint until the job is terminal, then fetches
// the result.
func (c *client) wait(id string) (job, error) {
	deadline := time.Now().Add(c.timeout)
	for {
		var j job
		status, e, err := c.call("GET", "/v1/queries/"+id, nil, &j)
		if err != nil {
			return job{}, err
		}
		if status != http.StatusOK {
			return job{}, fmt.Errorf("status %s: %d (%+v)", id, status, e)
		}
		switch j.State {
		case "done", "failed", "canceled":
			var full job
			if status, e, err := c.call("GET", "/v1/queries/"+id+"/result", nil, &full); err != nil || status != http.StatusOK {
				return job{}, fmt.Errorf("result %s: %d (%+v): %v", id, status, e, err)
			}
			return full, nil
		}
		if time.Now().After(deadline) {
			return job{}, fmt.Errorf("job %s still %s after %v", id, j.State, c.timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (c *client) budget(tenant string) (balance, error) {
	var b balance
	status, e, err := c.call("GET", "/v1/tenants/"+tenant+"/budget", nil, &b)
	if err != nil || status != http.StatusOK {
		return b, fmt.Errorf("budget %s: %d (%+v): %v", tenant, status, e, err)
	}
	return b, nil
}

// runSmoke is the endpoint-by-endpoint conformance pass (see the command
// comment). It assumes a fresh ledger and a single-job-worker daemon.
func runSmoke(c *client) error {
	// 1. Health.
	var health map[string]any
	if status, e, err := c.call("GET", "/healthz", nil, &health); err != nil || status != http.StatusOK {
		return fmt.Errorf("healthz: %d (%+v): %v", status, e, err)
	}
	if health["status"] != "ok" {
		return fmt.Errorf("healthz: %v", health)
	}
	// 2. Tenants: create two, list, read a budget.
	if err := c.ensureTenant("smoke-a", 3.5); err != nil {
		return err
	}
	if err := c.ensureTenant("smoke-b", 1.0); err != nil {
		return err
	}
	var listed struct {
		Tenants []balance `json:"tenants"`
	}
	if status, e, err := c.call("GET", "/v1/tenants", nil, &listed); err != nil || status != http.StatusOK {
		return fmt.Errorf("list tenants: %d (%+v): %v", status, e, err)
	}
	if len(listed.Tenants) < 2 {
		return fmt.Errorf("list tenants: %d tenants, want ≥ 2", len(listed.Tenants))
	}
	b0, err := c.budget("smoke-a")
	if err != nil {
		return err
	}
	if b0.EpsTotal != 3.5 {
		return fmt.Errorf("smoke-a eps_total = %g, want 3.5", b0.EpsTotal)
	}
	// 3. Submit one query (runs) and a second (stays queued behind it —
	// the daemon runs one job at a time in smoke mode), cancel the second.
	j1, err := c.submit("smoke-a", countQuery)
	if err != nil {
		return err
	}
	if j1.Epsilon != countEpsilon {
		return fmt.Errorf("job reserved ε = %g, want %g", j1.Epsilon, countEpsilon)
	}
	j2, err := c.submit("smoke-a", countQuery)
	if err != nil {
		return err
	}
	var canceled job
	if status, e, err := c.call("DELETE", "/v1/queries/"+j2.ID, nil, &canceled); err != nil || status != http.StatusOK {
		return fmt.Errorf("cancel %s: %d (%+v): %v", j2.ID, status, e, err)
	}
	// 4. Over-budget submission is rejected with a typed error before
	// executing: smoke-b holds ε=1, the query needs ε=50.
	if status, e, err := c.call("POST", "/v1/queries",
		map[string]any{"tenant": "smoke-b", "source": overBudgetQuery}, nil); err != nil {
		return err
	} else if status != http.StatusConflict || e == nil || e.Error.Code != "budget_exhausted" {
		return fmt.Errorf("over-budget submit: status %d code %+v, want 409 budget_exhausted", status, e)
	}
	// 5. First job completes and releases outputs.
	done, err := c.wait(j1.ID)
	if err != nil {
		return err
	}
	if done.State != "done" {
		return fmt.Errorf("job %s: state %s (%s: %s)", j1.ID, done.State, done.ErrorCode, done.Error)
	}
	if len(done.Outputs) == 0 {
		return fmt.Errorf("job %s: no outputs", j1.ID)
	}
	if done.SpentEpsilon != countEpsilon {
		return fmt.Errorf("job %s: spent ε = %g, want %g", j1.ID, done.SpentEpsilon, countEpsilon)
	}
	// 6. The ledger debited exactly the committed certificate: one done
	// query spent, the canceled reservation released.
	a, err := c.budget("smoke-a")
	if err != nil {
		return err
	}
	if a.EpsSpent != countEpsilon || a.EpsReserved != 0 || a.Queries != 1 {
		return fmt.Errorf("smoke-a balance after session = %+v, want spent %g, reserved 0, 1 query", a, countEpsilon)
	}
	b, err := c.budget("smoke-b")
	if err != nil {
		return err
	}
	if b.EpsSpent != 0 || b.EpsReserved != 0 {
		return fmt.Errorf("smoke-b balance = %+v, want untouched", b)
	}
	// 7. The job listing shows the session.
	var jobs struct {
		Jobs []job `json:"jobs"`
	}
	if status, e, err := c.call("GET", "/v1/queries?tenant=smoke-a", nil, &jobs); err != nil || status != http.StatusOK {
		return fmt.Errorf("list jobs: %d (%+v): %v", status, e, err)
	}
	states := map[string]int{}
	for _, j := range jobs.Jobs {
		states[j.State]++
	}
	if states["done"] != 1 || states["canceled"] != 1 {
		return fmt.Errorf("job states = %v, want one done and one canceled", states)
	}
	fmt.Println("arbload: smoke ok — all endpoints exercised, budgets exact")
	return nil
}

// runLoad spreads `queries` count-query submissions over `tenants` tenants
// from `clients` concurrent clients and verifies the ledger afterwards.
func runLoad(c *client, clients, queries, tenants int) error {
	if tenants < 1 || clients < 1 || queries < 1 {
		return fmt.Errorf("need positive -clients/-queries/-tenants")
	}
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("load-%d", i)
		// Budget every tenant generously: the load test measures
		// throughput, not rejection (the smoke pass covers rejection).
		if err := c.ensureTenant(names[i], float64(queries)*countEpsilon); err != nil {
			return err
		}
	}
	before := make(map[string]balance, tenants)
	for _, n := range names {
		b, err := c.budget(n)
		if err != nil {
			return err
		}
		before[n] = b
	}

	var mu sync.Mutex
	var latencies []time.Duration
	perTenantDone := map[string]int{}
	start := time.Now()
	err := parallel.ForEach(nil, queries, clients, func(i int) error {
		tenant := names[i%tenants]
		t0 := time.Now()
		j, err := c.submit(tenant, countQuery)
		if err != nil {
			return err
		}
		fin, err := c.wait(j.ID)
		if err != nil {
			return err
		}
		if fin.State != "done" {
			return fmt.Errorf("job %s for %s: %s (%s: %s)", j.ID, tenant, fin.State, fin.ErrorCode, fin.Error)
		}
		mu.Lock()
		latencies = append(latencies, time.Since(t0))
		perTenantDone[tenant]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	// The ledger invariant, from the outside: each tenant's spend moved by
	// exactly (completed queries × the per-query certificate ε), nothing is
	// left reserved, and no balance is oversubscribed.
	for _, n := range names {
		b, err := c.budget(n)
		if err != nil {
			return err
		}
		wantSpent := before[n].EpsSpent + float64(perTenantDone[n])*countEpsilon
		if math.Abs(b.EpsSpent-wantSpent) > 1e-9 {
			return fmt.Errorf("tenant %s: spent ε = %g, want %g (double-spend or lost commit)", n, b.EpsSpent, wantSpent)
		}
		if b.EpsReserved != 0 {
			return fmt.Errorf("tenant %s: ε %g still reserved after drain", n, b.EpsReserved)
		}
		if b.EpsSpent > b.EpsTotal+1e-9 {
			return fmt.Errorf("tenant %s: oversubscribed: spent %g of %g", n, b.EpsSpent, b.EpsTotal)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("arbload: %d queries, %d tenants, %d clients in %v (%.2f q/s)\n",
		queries, tenants, clients, elapsed.Round(time.Millisecond),
		float64(queries)/elapsed.Seconds())
	fmt.Printf("arbload: latency mean %v p50 %v max %v; budgets exact for all tenants\n",
		(sum / time.Duration(len(latencies))).Round(time.Millisecond),
		latencies[len(latencies)/2].Round(time.Millisecond),
		latencies[len(latencies)-1].Round(time.Millisecond))
	return nil
}

// runKillSubmit is the first half of the kill test: submit without waiting,
// recording each accepted job as a "tenant id" line in idsPath. The daemon
// is SIGKILLed mid-burst by the driving script, so a transport error is the
// phase's expected ending, not a failure — the accepted set on disk is what
// the verify phase holds recovery to.
func runKillSubmit(c *client, queries, tenants int, idsPath string) error {
	if idsPath == "" {
		return fmt.Errorf("-phase submit needs -ids")
	}
	if tenants < 1 || queries < 1 {
		return fmt.Errorf("need positive -queries/-tenants")
	}
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("kill-%d", i)
		if err := c.ensureTenant(names[i], float64(queries)*countEpsilon); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(idsPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	accepted := 0
	for i := 0; i < queries; i++ {
		j, err := c.submit(names[i%tenants], countQuery)
		if err != nil {
			fmt.Printf("arbload: submit phase ended after %d accepted: %v\n", accepted, err)
			return nil
		}
		if _, err := fmt.Fprintf(f, "%s %s\n", j.Tenant, j.ID); err != nil {
			return err
		}
		accepted++
	}
	fmt.Printf("arbload: submit phase accepted all %d queries\n", accepted)
	return nil
}

// runKillVerify is the second half of the kill test, run against the
// restarted daemon. Every job acknowledged before the kill must recover to
// done with the exact certificate spend; jobs the daemon journaled but never
// acknowledged (their 202 died with the process) must be terminal too —
// re-executed to done, or failed closed as "crashed" — and each tenant's
// ledger must balance exactly: nothing reserved, spent ε equal to done jobs
// × the per-query certificate, query count matching.
func runKillVerify(c *client, idsPath string) error {
	if idsPath == "" {
		return fmt.Errorf("-phase verify needs -ids")
	}
	data, err := os.ReadFile(idsPath)
	if err != nil {
		return err
	}
	acked := map[string][]string{} // tenant → job IDs acknowledged pre-kill
	total := 0
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return fmt.Errorf("ids file %s: bad line %q", idsPath, line)
		}
		acked[fields[0]] = append(acked[fields[0]], fields[1])
		total++
	}
	if total == 0 {
		return fmt.Errorf("ids file %s records no accepted jobs — the kill fired before the burst started", idsPath)
	}

	for tenant, ids := range acked {
		for _, id := range ids {
			j, err := c.wait(id)
			if err != nil {
				return err
			}
			if j.State != "done" {
				return fmt.Errorf("tenant %s job %s: recovered to %s (%s: %s), want done",
					tenant, id, j.State, j.ErrorCode, j.Error)
			}
			if j.SpentEpsilon != countEpsilon {
				return fmt.Errorf("tenant %s job %s: spent ε = %g, want %g", tenant, id, j.SpentEpsilon, countEpsilon)
			}
		}
	}

	recoveredExtra, failedClosed := 0, 0
	for tenant, ids := range acked {
		var listed struct {
			Jobs []job `json:"jobs"`
		}
		if status, e, err := c.call("GET", "/v1/queries?tenant="+tenant, nil, &listed); err != nil || status != http.StatusOK {
			return fmt.Errorf("list jobs for %s: %d (%+v): %v", tenant, status, e, err)
		}
		done := 0
		for _, lj := range listed.Jobs {
			// Unacknowledged recovered jobs may still be re-executing when the
			// acknowledged set finishes; wait polls each to terminal (a no-op
			// for jobs already there).
			j, err := c.wait(lj.ID)
			if err != nil {
				return err
			}
			switch j.State {
			case "done":
				done++
			case "failed":
				if j.ErrorCode != "crashed" {
					return fmt.Errorf("tenant %s job %s: failed with %q (%s), want fail-closed \"crashed\"",
						tenant, j.ID, j.ErrorCode, j.Error)
				}
				failedClosed++
			default:
				return fmt.Errorf("tenant %s job %s: unexpected terminal state %s", tenant, j.ID, j.State)
			}
		}
		if done < len(ids) {
			return fmt.Errorf("tenant %s: %d done jobs but %d were acknowledged pre-kill", tenant, done, len(ids))
		}
		recoveredExtra += done - len(ids)
		b, err := c.budget(tenant)
		if err != nil {
			return err
		}
		wantSpent := float64(done) * countEpsilon
		if math.Abs(b.EpsSpent-wantSpent) > 1e-9 || b.EpsReserved != 0 || b.Queries != done {
			return fmt.Errorf("tenant %s: balance %+v, want spent %g, reserved 0, %d queries (double-spend or leaked reservation)",
				tenant, b, wantSpent, done)
		}
	}
	fmt.Printf("arbload: kill verify ok — %d acknowledged jobs done, %d unacknowledged recovered, %d failed closed, budgets exact\n",
		total, recoveredExtra, failedClosed)
	return nil
}
