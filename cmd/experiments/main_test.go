package main

import "testing"

// The cheap experiments run through the same entry point the CLI uses.
func TestRunSelectedExperiments(t *testing.T) {
	for _, exp := range []string{"table2", "fig9"} {
		if err := run(exp, ""); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
	if err := run("bogus", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig9", dir); err != nil {
		t.Fatal(err)
	}
}
