// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 7).
//
// Usage:
//
//	experiments                 # run everything
//	experiments -exp fig6       # one experiment: table1 table2 fig6 fig7
//	                            # fig8 fig9 ablation fig10 fig11 geo hetero
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"arboretum/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, table2, fig6, fig7, fig8, fig9, ablation, fig10, fig11, geo, hetero, validate, design, all)")
	out := flag.String("out", "", "also write CSV data files into this directory")
	flag.Parse()
	if err := run(*exp, *out); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// saveCSV writes one experiment's data file when -out is set.
func saveCSV(dir, name, data string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644)
}

func run(exp, outDir string) error {
	all := exp == "all"
	section := func(title string) { fmt.Printf("\n=== %s ===\n", title) }

	if all || exp == "table1" {
		section("Table 1: approaches at 10^8 participants (zip-code query)")
		rows, err := eval.Table1()
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderTable1(rows))
	}
	if all || exp == "table2" {
		section("Table 2: supported queries")
		fmt.Print(eval.RenderTable2(eval.Table2()))
	}
	if all || exp == "fig6" || exp == "fig7" || exp == "fig8" {
		rows, err := eval.QueryCosts()
		if err != nil {
			return err
		}
		if all || exp == "fig6" {
			section("Figure 6")
			fmt.Print(eval.RenderFigure6(rows))
		}
		if all || exp == "fig7" {
			section("Figure 7")
			fmt.Print(eval.RenderFigure7(rows))
		}
		if all || exp == "fig8" {
			section("Figure 8")
			fmt.Print(eval.RenderFigure8(rows))
		}
		if csvData, err := eval.CSVQueryCosts(rows); err == nil {
			if err := saveCSV(outDir, "query_costs.csv", csvData); err != nil {
				return err
			}
		}
		if all {
			section("Section 7.2: committee structure")
			for _, r := range rows {
				fmt.Printf("%-12s committees=%-8d size=%-4d serving %.5f%% of participants\n",
					r.Query, r.CommitteeCount, r.CommitteeSize, 100*r.ServingFrac)
			}
		}
	}
	if all || exp == "fig9" {
		section("Figure 9: planner runtime")
		rows, err := eval.Figure9()
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderFigure9(rows))
		if csvData, err := eval.CSVFigure9(rows); err == nil {
			if err := saveCSV(outDir, "figure9.csv", csvData); err != nil {
				return err
			}
		}
	}
	if all || exp == "ablation" {
		section("Section 7.3: branch-and-bound ablation")
		rows, err := eval.Ablation(2_000_000)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderAblation(rows))
	}
	if all || exp == "fig10" {
		section("Figure 10: scalability")
		rows, err := eval.Figure10()
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderFigure10(rows))
		if csvData, err := eval.CSVFigure10(rows); err == nil {
			if err := saveCSV(outDir, "figure10.csv", csvData); err != nil {
				return err
			}
		}
	}
	if all || exp == "fig11" {
		section("Figure 11: power")
		rows, err := eval.Figure11()
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderFigure11(rows))
		if csvData, err := eval.CSVFigure11(rows); err == nil {
			if err := saveCSV(outDir, "figure11.csv", csvData); err != nil {
				return err
			}
		}
	}
	if all || exp == "geo" || exp == "hetero" {
		section("Section 7.5: heterogeneity")
		h, err := eval.Heterogeneity()
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderHeterogeneity(h))
	}
	if all || exp == "design" {
		section("Design-choice ablations")
		rows, err := eval.DesignAblations()
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderDesignAblations(rows))
	}
	if all || exp == "accuracy" {
		section("Utility vs ε (end-to-end)")
		rows, err := eval.Accuracy(10)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderAccuracy(rows))
	}
	if all || exp == "validate" {
		section("Cost-model validation (Appendix C analogue)")
		rows, err := eval.Validate()
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderValidation(rows))
	}
	if !all {
		switch exp {
		case "table1", "table2", "fig6", "fig7", "fig8", "fig9", "ablation", "fig10", "fig11", "geo", "hetero", "validate", "design", "accuracy":
		default:
			return fmt.Errorf("unknown experiment %q", exp)
		}
	}
	return nil
}
