// Command arboretumd is the Arboretum analyst gateway: a long-lived,
// multi-tenant HTTP server that accepts federated-analytics queries,
// certifies them as differentially private, meters each analyst's (ε, δ)
// privacy budget across queries in a durable ledger, and executes admitted
// jobs asynchronously on simulated deployments.
//
// Usage:
//
//	arboretumd [-addr :8750] [-ledger arboretumd.ledger] [-journal PATH] \
//	           [-tenants "alice=5,bob=3"] \
//	           [-devices 96] [-categories 8] [-committee 5] [-seed 1] \
//	           [-workers 0] [-job-workers 2] [-queue 64] \
//	           [-rate 5] [-burst 10] [-max-inflight 4] \
//	           [-job-timeout 0] [-retain-jobs 10000] [-drain-timeout 30s] \
//	           [-faults ""] [-secure-noise]
//
// The API (submit/status/result/cancel, tenant budgets, /healthz) is
// documented in docs/SERVICE.md; -tenants seeds budgets idempotently
// ("id=ε" or "id=ε:δ" entries, existing tenants keep their history), and
// -faults applies a default fault-injection schedule to every job's
// deployment (docs/FAULTS.md). The daemon prints "listening on ADDR" once
// it serves; -addr :0 picks a free port (scripts/loadtest.sh relies on
// both).
//
// Jobs are crash-resumable: every lifecycle transition is journaled (to
// -journal, default LEDGER.jobs) before it is observable, and a restarted
// daemon re-executes journaled in-flight jobs deterministically against
// their still-held reservations instead of dropping them. On SIGINT or
// SIGTERM the daemon stops accepting work, gives running jobs up to
// -drain-timeout to finish, journals the rest for the next start, and
// closes the journal and ledger.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"arboretum/internal/faults"
	"arboretum/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "arboretumd:", err)
		os.Exit(1)
	}
}

// parseTenants parses the -tenants flag: comma-separated "id=ε" or
// "id=ε:δ" entries.
func parseTenants(spec string) ([]service.TenantSpec, error) {
	var out []service.TenantSpec
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		id, budget, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("tenant entry %q: want id=epsilon or id=epsilon:delta", entry)
		}
		epsStr, delStr, hasDelta := strings.Cut(budget, ":")
		eps, err := strconv.ParseFloat(epsStr, 64)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: epsilon %q: %v", id, epsStr, err)
		}
		del := 1e-6
		if hasDelta {
			if del, err = strconv.ParseFloat(delStr, 64); err != nil {
				return nil, fmt.Errorf("tenant %q: delta %q: %v", id, delStr, err)
			}
		}
		out = append(out, service.TenantSpec{ID: id, Epsilon: eps, Delta: del})
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("arboretumd", flag.ExitOnError)
	addr := fs.String("addr", ":8750", "listen address (:0 picks a free port)")
	ledgerPath := fs.String("ledger", "arboretumd.ledger", "privacy-budget WAL path")
	journalPath := fs.String("journal", "", "job journal path (default LEDGER.jobs)")
	tenants := fs.String("tenants", "", `tenants to seed, e.g. "alice=5,bob=3" or "alice=5:1e-6"`)
	devices := fs.Int("devices", 96, "simulated devices per job deployment")
	categories := fs.Int("categories", 8, "one-hot categories per device input")
	committee := fs.Int("committee", 5, "committee size")
	seed := fs.Int64("seed", 1, "base seed; job j runs on seed+j")
	workers := fs.Int("workers", 0, "per-job runtime worker pool (0 = ARBORETUM_WORKERS, then GOMAXPROCS)")
	jobWorkers := fs.Int("job-workers", 2, "jobs executing concurrently")
	queue := fs.Int("queue", 64, "submit queue depth (full queue = 503)")
	rate := fs.Float64("rate", 5, "per-tenant sustained submissions per second (0 = unlimited)")
	burst := fs.Int("burst", 10, "per-tenant submission burst")
	maxInflight := fs.Int("max-inflight", 4, "per-tenant queued+running job cap (0 = unlimited)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job execution deadline (0 = none; submissions may override)")
	retainJobs := fs.Int("retain-jobs", 0, "terminal jobs kept queryable before eviction (0 = default 10000)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for running jobs (negative = forever)")
	faultSpec := fs.String("faults", "", `default fault schedule per job, e.g. "seed=7,upload=0.1" (docs/FAULTS.md)`)
	ledgerFaults := fs.String("ledger-faults", "", `WAL crash schedule for chaos testing, e.g. "seed=1,wal=0.01"`)
	daemonFaults := fs.String("daemon-faults", "", `daemon death schedule for chaos testing, e.g. "seed=1,daemon=0.01" or "daemon@3.2"`)
	secureNoise := fs.Bool("secure-noise", false, "draw committee noise from crypto/rand (production)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tens, err := parseTenants(*tenants)
	if err != nil {
		return err
	}
	crashPlan, err := faults.Parse(*ledgerFaults)
	if err != nil {
		return fmt.Errorf("-ledger-faults: %w", err)
	}
	daemonPlan, err := faults.Parse(*daemonFaults)
	if err != nil {
		return fmt.Errorf("-daemon-faults: %w", err)
	}
	srv, err := service.New(service.Config{
		LedgerPath:    *ledgerPath,
		JournalPath:   *journalPath,
		Tenants:       tens,
		Devices:       *devices,
		Categories:    *categories,
		CommitteeSize: *committee,
		Seed:          *seed,
		SecureNoise:   *secureNoise,
		Workers:       *workers,
		JobWorkers:    *jobWorkers,
		QueueDepth:    *queue,
		Rate:          *rate,
		Burst:         *burst,
		MaxInFlight:   *maxInflight,
		JobTimeout:    *jobTimeout,
		RetainJobs:    *retainJobs,
		FaultSpec:     *faultSpec,
		LedgerFaults:  crashPlan,
		DaemonFaults:  daemonPlan,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return errors.Join(err, srv.Close())
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The sentinel line scripts wait for; with -addr :0 it is also how they
	// learn the port.
	fmt.Printf("arboretumd: listening on %s (ledger %s)\n", ln.Addr(), *ledgerPath)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return errors.Join(err, srv.Close())
	case <-ctx.Done():
	}
	fmt.Println("arboretumd: shutting down")
	// Drain first: admission flips to 503 shutting_down, running jobs get up
	// to -drain-timeout, and whatever remains is journaled for the next
	// start. Then close the HTTP front end (read-only requests keep working
	// during the drain).
	drainErr := srv.Drain(*drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
