// Command planshow prints the chosen plan for every evaluation query at the
// paper's deployment scale — a quick way to inspect the planner's output.
package main

import (
	"fmt"

	"arboretum/internal/costmodel"
	"arboretum/internal/planner"
	"arboretum/internal/queries"
)

func main() {
	for _, q := range queries.All {
		res, err := planner.Plan(planner.Request{
			Name: q.Name, Source: q.Source, N: 1 << 30, Categories: q.Categories,
			Goal: costmodel.PartExpCPU, Limits: planner.DefaultLimits,
		})
		if err != nil {
			fmt.Println(q.Name, "ERROR:", err)
			continue
		}
		p := res.Plan
		fmt.Printf("%-10s exp %6.1fs/%7.2fMB  max %7.1fs/%7.2fGB  agg %8.0f core-h/%8.1fTB  comm=%d m=%d prefixes=%d t=%v\n",
			q.Name, p.Cost.PartExpCPU, p.Cost.PartExpBytes/1e6,
			p.Cost.PartMaxCPU, p.Cost.PartMaxBytes/1e9,
			p.Cost.AggCPU/3600, p.Cost.AggBytes/1e12,
			p.CommitteeCount, p.CommitteeSize, res.Stats.PrefixesExplored, res.PlanningTime)
		fmt.Printf("           choices: %v\n", p.Choices)
	}
}
