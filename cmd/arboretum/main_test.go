package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadQueryBuiltin(t *testing.T) {
	name, src, c, err := loadQuery("top1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "top1" || src == "" || c != 1<<15 {
		t.Errorf("loadQuery(top1) = %q, %d", name, c)
	}
	// Category override.
	_, _, c, err = loadQuery("top1", "", 128)
	if err != nil || c != 128 {
		t.Errorf("category override: c=%d err=%v", c, err)
	}
	if _, _, _, err := loadQuery("nope", "", 0); err == nil {
		t.Error("unknown query accepted")
	}
	if _, _, _, err := loadQuery("", "", 0); err == nil {
		t.Error("missing query and file accepted")
	}
}

func TestLoadQueryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.txt")
	if err := os.WriteFile(path, []byte("output(1);"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, src, c, err := loadQuery("", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != path || src != "output(1);" || c != 1 {
		t.Errorf("loadQuery(file) = %q %q %d", name, src, c)
	}
	if _, _, _, err := loadQuery("", "/no/such/file", 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPlanCmd(t *testing.T) {
	if err := planCmd([]string{"-query", "cms", "-n", "1048576"}); err != nil {
		t.Fatal(err)
	}
	if err := planCmd([]string{"-query", "cms", "-goal", "bogus"}); err == nil {
		t.Error("bogus goal accepted")
	}
}

func TestExplainCmd(t *testing.T) {
	if err := explainCmd([]string{"-query", "cms", "-n", "1048576", "-dim", "noise"}); err != nil {
		t.Fatal(err)
	}
	if err := explainCmd([]string{"-query", "cms", "-dim", "bogus"}); err == nil {
		t.Error("bogus dimension accepted")
	}
}

func TestPlanCmdJSON(t *testing.T) {
	if err := planCmd([]string{"-query", "cms", "-n", "1048576", "-json"}); err != nil {
		t.Fatal(err)
	}
}

// captureRun runs runCmd with stdout redirected to a pipe and returns
// everything it printed, plus the command error.
func captureRun(t *testing.T, args []string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := runCmd(args)
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// TestRunCmdFaultReplayDeterminism is the CLI half of the fault-injection
// determinism contract: the same -seed and -faults spec must print a
// byte-identical transcript (outputs, fault schedule, fired-fault log, and
// recovery summary) on every invocation, so an operator can replay a chaos
// run from nothing but the two flags. The schedule forces an aggregator
// crash at chunk 1, exercising checkpoint resume + Merkle audit end to end.
func TestRunCmdFaultReplayDeterminism(t *testing.T) {
	path := filepath.Join(t.TempDir(), "count.txt")
	q := "aggr = sum(db);\nnoised = laplace(aggr[0], 5.0);\noutput(declassify(noised));\n"
	if err := os.WriteFile(path, []byte(q), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-file", path, "-categories", "4",
		"-devices", "48", "-committee", "5", "-seed", "7",
		"-faults", "seed=7,upload=0.1,crash@1",
	}
	first, err := captureRun(t, args)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if !strings.Contains(first, "fault plan:") || !strings.Contains(first, "recovery:") {
		t.Errorf("report missing plan/recovery sections:\n%s", first)
	}
	if !strings.Contains(first, "fault crash[1") {
		t.Errorf("forced aggregator crash at chunk 1 not in fired log:\n%s", first)
	}
	if !strings.Contains(first, "1 aggregator crashes (1 resumes)") {
		t.Errorf("crash-then-resume not reflected in recovery summary:\n%s", first)
	}
	second, err := captureRun(t, args)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if first != second {
		t.Errorf("replay diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestRunCmdBadFaultSpec(t *testing.T) {
	if _, err := captureRun(t, []string{"-query", "top1", "-faults", "bogus=1"}); err == nil {
		t.Error("bogus fault spec accepted")
	}
}

// TestRunCmdStreamMatchesLegacy is the CLI half of the streaming-ingest
// equivalence contract (docs/INGEST.md): -stream must print a transcript
// byte-identical to the legacy collection path at the same seed, at any
// shard/batch shape, including under a forced shard crash (which fires
// only on the streaming path and recovers from its batch checkpoint).
func TestRunCmdStreamMatchesLegacy(t *testing.T) {
	base := []string{"-query", "top1", "-devices", "48", "-committee", "5", "-seed", "7"}
	legacy, err := captureRun(t, base)
	if err != nil {
		t.Fatalf("legacy run: %v", err)
	}
	for _, extra := range [][]string{
		{"-stream"},
		{"-stream", "-ingest-shards", "3", "-ingest-batch", "5", "-workers", "4"},
	} {
		got, err := captureRun(t, append(append([]string{}, base...), extra...))
		if err != nil {
			t.Fatalf("stream run %v: %v", extra, err)
		}
		if got != legacy {
			t.Errorf("stream transcript %v diverged from legacy:\n--- legacy ---\n%s\n--- stream ---\n%s", extra, legacy, got)
		}
	}
	crashed, err := captureRun(t, append(append([]string{}, base...),
		"-stream", "-ingest-batch", "8", "-faults", "seed=7,shard@1"))
	if err != nil {
		t.Fatalf("stream run with forced shard crash: %v", err)
	}
	if !strings.Contains(crashed, "fault shard[1") {
		t.Errorf("forced shard crash not in fired log:\n%s", crashed)
	}
	if !strings.Contains(crashed, "1 shard crashes (1 resumes)") {
		t.Errorf("shard crash-then-resume not in recovery summary:\n%s", crashed)
	}
}
