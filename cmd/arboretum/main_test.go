package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadQueryBuiltin(t *testing.T) {
	name, src, c, err := loadQuery("top1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "top1" || src == "" || c != 1<<15 {
		t.Errorf("loadQuery(top1) = %q, %d", name, c)
	}
	// Category override.
	_, _, c, err = loadQuery("top1", "", 128)
	if err != nil || c != 128 {
		t.Errorf("category override: c=%d err=%v", c, err)
	}
	if _, _, _, err := loadQuery("nope", "", 0); err == nil {
		t.Error("unknown query accepted")
	}
	if _, _, _, err := loadQuery("", "", 0); err == nil {
		t.Error("missing query and file accepted")
	}
}

func TestLoadQueryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.txt")
	if err := os.WriteFile(path, []byte("output(1);"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, src, c, err := loadQuery("", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != path || src != "output(1);" || c != 1 {
		t.Errorf("loadQuery(file) = %q %q %d", name, src, c)
	}
	if _, _, _, err := loadQuery("", "/no/such/file", 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPlanCmd(t *testing.T) {
	if err := planCmd([]string{"-query", "cms", "-n", "1048576"}); err != nil {
		t.Fatal(err)
	}
	if err := planCmd([]string{"-query", "cms", "-goal", "bogus"}); err == nil {
		t.Error("bogus goal accepted")
	}
}

func TestExplainCmd(t *testing.T) {
	if err := explainCmd([]string{"-query", "cms", "-n", "1048576", "-dim", "noise"}); err != nil {
		t.Fatal(err)
	}
	if err := explainCmd([]string{"-query", "cms", "-dim", "bogus"}); err == nil {
		t.Error("bogus dimension accepted")
	}
}

func TestPlanCmdJSON(t *testing.T) {
	if err := planCmd([]string{"-query", "cms", "-n", "1048576", "-json"}); err != nil {
		t.Fatal(err)
	}
}
