// Command arboretum plans and executes federated-analytics queries.
//
// Usage:
//
//	arboretum plan  -query top1 [-n 1073741824] [-goal device-expected-cpu]
//	arboretum plan  -query median -limit-max-sent-user 1000 -limit-agg-core-hours 1000
//	arboretum plan  -file my_query.txt -categories 1024
//	arboretum run   -query top1 [-devices 128] [-committee 5] [-workers 4] [-stream]
//	arboretum list
//
// `plan` prints the chosen plan (vignettes, committees, six-metric cost) for
// a deployment of -n participants; the -limit-* flags bound what the plan may
// cost each entity (unset limits default to the paper's evaluation setup).
// `run` executes the query end to end on a small simulated deployment with
// real cryptography. `list` shows the built-in evaluation queries. -workers
// bounds the worker pool (default: ARBORETUM_WORKERS, then GOMAXPROCS);
// plans and query outputs are identical at every worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"arboretum"
	"arboretum/internal/queries"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "plan":
		if err := planCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "arboretum:", err)
			os.Exit(1)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "arboretum:", err)
			os.Exit(1)
		}
	case "explain":
		if err := explainCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "arboretum:", err)
			os.Exit(1)
		}
	case "list":
		listCmd()
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  arboretum plan    -query <name> | -file <path> [-n N] [-categories C] [-goal G]
                    [-workers W] [-ring paper|test]
                    [-limit-avg-sent-user MB] [-limit-avg-comp-user s]
                    [-limit-max-sent-user MB] [-limit-max-comp-user s]
                    [-limit-agg-core-hours h] [-limit-agg-sent GB]
  arboretum run     -query <name> | -file <path> [-devices D] [-committee M] [-seed S] [-workers W]
                    [-faults "seed=7,upload=0.1,dropout=0.005"]
                    [-stream] [-ingest-shards S] [-ingest-batch B]
  arboretum explain -query <name> | -file <path> [-n N] -dim sum|em|noise|compute
  arboretum list`)
}

// loadQuery resolves -query/-file/-categories into source text + width.
func loadQuery(name, file string, categories int64) (string, string, int64, error) {
	if name != "" {
		q, err := queries.ByName(name)
		if err != nil {
			return "", "", 0, err
		}
		c := q.Categories
		if categories > 0 {
			c = categories
		}
		return q.Name, q.Source, c, nil
	}
	if file == "" {
		return "", "", 0, fmt.Errorf("need -query or -file")
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return "", "", 0, err
	}
	if categories <= 0 {
		categories = 1
	}
	return file, string(data), categories, nil
}

func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	name := fs.String("query", "", "built-in query name (see `arboretum list`)")
	file := fs.String("file", "", "query source file")
	n := fs.Int64("n", 1<<30, "number of participants")
	categories := fs.Int64("categories", 0, "one-hot categories (default: the query's)")
	goal := fs.String("goal", string(arboretum.MinimizeExpectedDeviceCPU), "optimization goal")
	verbose := fs.Bool("v", false, "show per-vignette member costs")
	asJSON := fs.Bool("json", false, "emit the plan result as JSON")
	workers := fs.Int("workers", 0, "search worker pool size (0 = ARBORETUM_WORKERS, then GOMAXPROCS)")
	ring := fs.String("ring", "", "measure FHE costs natively on a named BGV ring (\"paper\" = 2^15/135-bit RNS, \"test\"); default: reference model")
	limAvgSent := fs.Float64("limit-avg-sent-user", -1, "max expected MB sent per user device")
	limAvgComp := fs.Float64("limit-avg-comp-user", -1, "max expected compute seconds per user device")
	limMaxSent := fs.Float64("limit-max-sent-user", -1, "max MB sent by any user device")
	limMaxComp := fs.Float64("limit-max-comp-user", -1, "max compute seconds for any user device")
	limAggHours := fs.Float64("limit-agg-core-hours", -1, "max aggregator core-hours")
	limAggSent := fs.Float64("limit-agg-sent", -1, "max GB sent by the aggregator")
	if err := fs.Parse(args); err != nil {
		return err
	}
	label, src, c, err := loadQuery(*name, *file, *categories)
	if err != nil {
		return err
	}
	// Unset limits keep the paper's evaluation defaults; a set flag overrides
	// its one metric (0 = unlimited).
	limits := arboretum.DefaultLimits()
	if *limAvgSent >= 0 {
		limits.DeviceExpectedBytes = *limAvgSent * 1e6
	}
	if *limAvgComp >= 0 {
		limits.DeviceExpectedCPU = *limAvgComp
	}
	if *limMaxSent >= 0 {
		limits.DeviceMaxBytes = *limMaxSent * 1e6
	}
	if *limMaxComp >= 0 {
		limits.DeviceMaxCPU = *limMaxComp
	}
	if *limAggHours >= 0 {
		limits.AggregatorCoreHours = *limAggHours
	}
	if *limAggSent >= 0 {
		limits.AggregatorBytes = *limAggSent * 1e9
	}
	res, err := arboretum.Plan(arboretum.PlanRequest{
		Name: label, Source: src, N: *n, Categories: c,
		Goal: arboretum.Goal(*goal), Limits: limits,
		Workers: *workers, Ring: *ring,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if *verbose {
		fmt.Print(res.Detail)
	} else {
		fmt.Print(res.Summary)
	}
	fmt.Printf("privacy: (ε=%.4g, δ=%.3g)-differential privacy\n", res.Epsilon, res.Delta)
	fmt.Printf("planner: %v, %d plan prefixes considered\n", res.PlanningTime, res.PrefixesExplored)
	fmt.Printf("choices: %v\n", res.Choices)
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("query", "", "built-in query name")
	file := fs.String("file", "", "query source file")
	devices := fs.Int("devices", 128, "simulated devices")
	categories := fs.Int64("categories", 8, "categories for the simulated data")
	committee := fs.Int("committee", 5, "committee size")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "worker pool size for per-device work (0 = ARBORETUM_WORKERS, then GOMAXPROCS)")
	faultSpec := fs.String("faults", "", `fault schedule, e.g. "seed=7,upload=0.1,dropout=0.005,crash@1" (see docs/FAULTS.md)`)
	stream := fs.Bool("stream", false, "collect inputs via the sharded streaming ingest pipeline (docs/INGEST.md); released outputs are identical")
	shards := fs.Int("ingest-shards", 0, "streaming-ingest shard count (0 = default 8)")
	batch := fs.Int("ingest-batch", 0, "streaming-ingest batch size (0 = default 64)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, src, c, err := loadQuery(*name, *file, *categories)
	if err != nil {
		return err
	}
	if c > 32 {
		c = 32 // keep the simulated run snappy
	}
	d, err := arboretum.NewDeployment(arboretum.DeploymentConfig{
		Devices: *devices, Categories: int(c), CommitteeSize: *committee,
		Seed: *seed, BudgetEpsilon: 1000, Workers: *workers,
		Faults:       *faultSpec,
		StreamIngest: *stream, IngestShards: *shards, IngestBatch: *batch,
	})
	if err != nil {
		return err
	}
	res, err := d.Run(src)
	if *faultSpec != "" {
		// The replay report is printed even when the run fails closed: the
		// schedule, fired-fault log, and recovery summary are the point of a
		// -faults run, and they are deterministic for a given -seed/-faults
		// pair, so two invocations print byte-identical reports.
		fmt.Print(d.FaultReport())
	}
	if err != nil {
		return err
	}
	fmt.Printf("accepted inputs: %d\n", res.AcceptedInputs)
	fmt.Printf("charged ε: %.4g\n", res.Epsilon)
	for i, o := range res.Outputs {
		fmt.Printf("output[%d] = %g\n", i, o)
	}
	return nil
}

func listCmd() {
	fmt.Printf("%-10s %-28s %6s %6s\n", "name", "action", "C", "lines")
	for _, q := range arboretum.EvaluationQueries() {
		fmt.Printf("%-10s %-28s %6d %6d\n", q.Name, q.Action, q.Categories, q.Lines)
	}
}

// explainCmd prices the alternatives the planner rejected for one operator:
// it re-plans with each implementation family pinned and prints the cost
// deltas, so an analyst can see why the winner won.
func explainCmd(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	name := fs.String("query", "", "built-in query name")
	file := fs.String("file", "", "query source file")
	n := fs.Int64("n", 1<<30, "number of participants")
	categories := fs.Int64("categories", 0, "one-hot categories")
	dim := fs.String("dim", "sum", "operator to explain: sum, em, noise, compute")
	if err := fs.Parse(args); err != nil {
		return err
	}
	label, src, c, err := loadQuery(*name, *file, *categories)
	if err != nil {
		return err
	}
	families := map[string][]string{
		"sum":     {"aggregator-loop", "device-tree-fanout-2", "device-tree-fanout-8", "device-tree-fanout-64"},
		"em":      {"gumbel", "exponentiate-mpc", "exponentiate-fhe"},
		"noise":   {"committee-slice-1", "committee-slice-16", "committee-slice-64"},
		"compute": {"aggregator-he", "committee-slice-16", "committee-slice-1024"},
	}
	alts, ok := families[*dim]
	if !ok {
		return fmt.Errorf("unknown dimension %q", *dim)
	}
	free, err := arboretum.Plan(arboretum.PlanRequest{
		Name: label, Source: src, N: *n, Categories: c,
		Limits: arboretum.DefaultLimits(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("planner's choice for %s: %s\n\n", *dim, free.Choices[*dim])
	fmt.Printf("%-24s %10s %9s %8s %9s %8s\n", "pinned", "agg h", "exp s", "exp MB", "max s", "max GB")
	for _, alt := range alts {
		res, err := arboretum.Plan(arboretum.PlanRequest{
			Name: label, Source: src, N: *n, Categories: c,
			Limits:       arboretum.DefaultLimits(),
			ForceChoices: map[string]string{*dim: alt},
		})
		if err != nil {
			fmt.Printf("%-24s infeasible (%v)\n", alt, err)
			continue
		}
		fmt.Printf("%-24s %10.0f %9.1f %8.2f %9.0f %8.2f\n",
			alt, res.AggregatorCoreHours, res.DeviceExpectedCPU, res.DeviceExpectedMB,
			res.DeviceMaxCPU, res.DeviceMaxGB)
	}
	return nil
}
